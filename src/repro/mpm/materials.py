"""Constitutive models for plane-strain MPM.

* :class:`LinearElastic` — isotropic Hookean solid.
* :class:`DruckerPrager` — elastic predictor / plastic corrector with a
  Drucker–Prager cone fitted to a Mohr–Coulomb friction angle (plane-strain
  fit), non-associated flow (zero dilatancy) and a tension cutoff. This is
  the granular model that generates the paper's column-collapse and
  box-flow datasets; the friction angle φ is the parameter recovered by the
  inverse problem in Section 5.

Sign convention: tension positive (so gravity-loaded soil has negative
mean stress).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Material", "LinearElastic", "DruckerPrager", "NewtonianFluid"]


@dataclass
class Material:
    """Base elastic material with Lamé constants from (E, ν)."""

    density: float
    youngs_modulus: float
    poisson_ratio: float

    @property
    def mu(self) -> float:
        """Shear modulus G."""
        return self.youngs_modulus / (2.0 * (1.0 + self.poisson_ratio))

    @property
    def lam(self) -> float:
        """First Lamé constant λ."""
        e, nu = self.youngs_modulus, self.poisson_ratio
        return e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu))

    @property
    def bulk_modulus(self) -> float:
        return self.lam + 2.0 * self.mu / 3.0

    def wave_speed(self) -> float:
        """P-wave speed — sets the CFL-stable time step."""
        return float(np.sqrt((self.lam + 2.0 * self.mu) / self.density))

    def elastic_increment(self, strain_inc: np.ndarray,
                          dezz: np.ndarray | None = None
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Hooke's law stress increment for in-plane strain increments.

        Parameters
        ----------
        strain_inc: ``(n, 2, 2)`` symmetric in-plane strain increments.
        dezz: out-of-plane normal strain increments (zero under plane strain).

        Returns
        -------
        (dsigma, dsigma_zz): in-plane ``(n, 2, 2)`` and out-of-plane ``(n,)``.
        """
        tr = strain_inc[:, 0, 0] + strain_inc[:, 1, 1]
        if dezz is not None:
            tr = tr + dezz
        eye = np.eye(2)
        dsig = self.lam * tr[:, None, None] * eye + 2.0 * self.mu * strain_inc
        dzz = self.lam * tr + (2.0 * self.mu * dezz if dezz is not None else 0.0)
        return dsig, dzz

    def update_stress(self, stresses, sigma_zz, strain_inc, spin_inc,
                      **kwargs):
        raise NotImplementedError  # pragma: no cover


def _jaumann_rotate(stresses: np.ndarray, spin_inc: np.ndarray) -> np.ndarray:
    """Objective (Jaumann) stress rotation: σ += W σ − σ W."""
    return stresses + spin_inc @ stresses - stresses @ spin_inc


@dataclass
class LinearElastic(Material):
    """Isotropic linear elasticity with Jaumann objective rate."""

    def update_stress(self, stresses: np.ndarray, sigma_zz: np.ndarray,
                      strain_inc: np.ndarray, spin_inc: np.ndarray,
                      **kwargs) -> tuple[np.ndarray, np.ndarray]:
        rotated = _jaumann_rotate(stresses, spin_inc)
        dsig, dzz = self.elastic_increment(strain_inc)
        return rotated + dsig, sigma_zz + dzz


@dataclass
class DruckerPrager(Material):
    """Drucker–Prager elastoplasticity (non-associated, tension cutoff).

    Parameters
    ----------
    friction_angle:
        Mohr–Coulomb friction angle φ in **degrees** — the material
        parameter the paper's inverse problem identifies.
    cohesion:
        Cohesion c (Pa); keep small but nonzero for numerical robustness
        of dry granular media.
    tension_cutoff:
        Maximum allowed mean stress (tension positive). Defaults to the
        cone apex.
    """

    friction_angle: float = 30.0
    cohesion: float = 0.0
    tension_cutoff: float | None = None

    def _cone(self) -> tuple[float, float]:
        """Plane-strain DP fit: q_f = α p + k with p = -I1/3 compression."""
        phi = np.deg2rad(self.friction_angle)
        t = np.tan(phi)
        denom = np.sqrt(9.0 + 12.0 * t * t)
        alpha = 3.0 * t / denom
        k = 3.0 * self.cohesion / denom
        return float(alpha), float(k)

    def update_stress(self, stresses: np.ndarray, sigma_zz: np.ndarray,
                      strain_inc: np.ndarray, spin_inc: np.ndarray,
                      **kwargs) -> tuple[np.ndarray, np.ndarray]:
        # elastic predictor with objective rotation
        trial = _jaumann_rotate(stresses, spin_inc)
        dsig, dzz = self.elastic_increment(strain_inc)
        trial = trial + dsig
        szz = sigma_zz + dzz

        # invariants of the full 3-D stress (plane strain)
        i1 = trial[:, 0, 0] + trial[:, 1, 1] + szz
        p = i1 / 3.0                                  # mean stress, tension +
        # deviator components
        s00 = trial[:, 0, 0] - p
        s11 = trial[:, 1, 1] - p
        szz_dev = szz - p
        s01 = trial[:, 0, 1]
        j2 = 0.5 * (s00 ** 2 + s11 ** 2 + szz_dev ** 2) + s01 ** 2
        q = np.sqrt(np.maximum(j2, 1e-30))

        alpha, k = self._cone()
        # yield function in tension-positive convention:
        # f = sqrt(J2) + alpha * p - k   (p < 0 in compression strengthens)
        f = q + alpha * p - k

        apex = k / alpha if alpha > 0 else np.inf
        p_cut = apex if self.tension_cutoff is None else min(self.tension_cutoff, apex)

        # tension cutoff: project mean stress back to the cap
        tension = p > p_cut
        p_new = np.where(tension, p_cut, p)

        # shear failure: radial return of the deviator onto the cone
        q_allow = np.maximum(k - alpha * p_new, 0.0)
        yielding = (f > 0.0) | tension
        scale = np.where(yielding & (q > 1e-20), np.minimum(q_allow / q, 1.0), 1.0)

        s00 *= scale
        s11 *= scale
        s01 *= scale
        szz_dev *= scale

        out = np.empty_like(trial)
        out[:, 0, 0] = s00 + p_new
        out[:, 1, 1] = s11 + p_new
        out[:, 0, 1] = s01
        out[:, 1, 0] = s01
        szz_out = szz_dev + p_new
        return out, szz_out


@dataclass
class NewtonianFluid:
    """Weakly-compressible Newtonian fluid (Tait equation of state).

    The standard MPM water model: pressure from the volume ratio
    ``p = K ((V0/V)^γ − 1)`` (clamped non-negative — a free surface cannot
    sustain tension) plus a deviatoric viscous stress ``2 μ dev(ε̇)``.
    The stress is a *state* function of (J, ε̇), not an increment, so the
    solver passes the per-particle Jacobian and the time step.

    Parameters
    ----------
    density: rest density ρ0.
    bulk_modulus: K — keep well below real water's 2.2 GPa so the CFL
        step stays practical (standard weak-compressibility practice:
        choose K for <1% density variation at flow speeds of interest).
    viscosity: dynamic viscosity μ.
    gamma: Tait exponent (7 for water).
    """

    density: float
    bulk_modulus: float = 2e5
    viscosity: float = 1e-3
    gamma: float = 7.0

    def wave_speed(self) -> float:
        """Artificial sound speed √(γK/ρ) — sets the CFL step."""
        return float(np.sqrt(self.gamma * self.bulk_modulus / self.density))

    def update_stress(self, stresses: np.ndarray, sigma_zz: np.ndarray,
                      strain_inc: np.ndarray, spin_inc: np.ndarray,
                      jacobian: np.ndarray | None = None,
                      dt: float | None = None,
                      **kwargs) -> tuple[np.ndarray, np.ndarray]:
        if jacobian is None or dt is None:
            raise ValueError("NewtonianFluid needs jacobian and dt from the solver")
        j = np.maximum(jacobian, 1e-6)
        pressure = self.bulk_modulus * (j ** (-self.gamma) - 1.0)
        pressure = np.maximum(pressure, 0.0)   # tension cutoff (free surface)

        rate = strain_inc / dt
        tr = rate[:, 0, 0] + rate[:, 1, 1]
        dev = rate.copy()
        dev[:, 0, 0] -= tr / 2.0
        dev[:, 1, 1] -= tr / 2.0

        out = 2.0 * self.viscosity * dev
        out[:, 0, 0] -= pressure
        out[:, 1, 1] -= pressure
        return out, -pressure
