"""Symbolic regression: GA over expression trees with the paper's
complexity weighting, Pareto-front selection rule, and dimensional
analysis (Section 6, Table 1)."""

from .expr import Call, Const, Expr, Var, random_expr
from .operators import BINARY_OPS, DEFAULT_BINARY, DEFAULT_UNARY, UNARY_OPS, Operator
from .ga import ParetoEntry, SymbolicRegressionConfig, SymbolicRegressor
from .selection import ScoredEntry, score_front, select_best
from .simplify import fold_constants, simplify
from .serialize import (
    expr_from_dict, expr_from_json, expr_to_dict, expr_to_json, to_latex,
)
from .dimension import (
    DIMENSIONLESS, FORCE, LENGTH, MASS, STIFFNESS, TIME, Dim,
    check_dimensions,
)

__all__ = [
    "Call", "Const", "Expr", "Var", "random_expr",
    "BINARY_OPS", "DEFAULT_BINARY", "DEFAULT_UNARY", "UNARY_OPS", "Operator",
    "ParetoEntry", "SymbolicRegressionConfig", "SymbolicRegressor",
    "ScoredEntry", "score_front", "select_best",
    "DIMENSIONLESS", "FORCE", "LENGTH", "MASS", "STIFFNESS", "TIME", "Dim",
    "check_dimensions",
    "fold_constants", "simplify",
    "expr_from_dict", "expr_from_json", "expr_to_dict", "expr_to_json",
    "to_latex",
]
