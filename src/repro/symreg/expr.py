"""Expression trees for symbolic regression.

An expression is an immutable-ish tree of :class:`Const`, :class:`Var`,
and :class:`Call` nodes. Evaluation is vectorized over a data dictionary
of equal-length arrays. Complexity follows the paper: a weighted count of
every operator, constant, and variable occurrence, with ``pow, exp, inv,
log`` counting 3×.
"""

from __future__ import annotations

import numpy as np

from .operators import BINARY_OPS, UNARY_OPS, Operator

__all__ = ["Expr", "Const", "Var", "Call", "random_expr"]


class Expr:
    """Base expression node."""

    def evaluate(self, data: dict[str, np.ndarray]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def complexity(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> list["Expr"]:
        return []

    def clone(self) -> "Expr":  # pragma: no cover
        raise NotImplementedError

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children())

    def depth(self) -> int:
        kids = self.children()
        return 1 + (max(k.depth() for k in kids) if kids else 0)

    def nodes(self) -> list["Expr"]:
        """Pre-order list of all nodes (self first)."""
        out = [self]
        for c in self.children():
            out.extend(c.nodes())
        return out

    def variables(self) -> set[str]:
        out: set[str] = set()
        for node in self.nodes():
            if isinstance(node, Var):
                out.add(node.name)
        return out

    def mae(self, data: dict[str, np.ndarray], target: np.ndarray) -> float:
        pred = self.evaluate(data)
        return float(np.mean(np.abs(pred - target)))

    def mse(self, data: dict[str, np.ndarray], target: np.ndarray) -> float:
        pred = self.evaluate(data)
        return float(np.mean((pred - target) ** 2))

    def __repr__(self) -> str:
        return str(self)


class Const(Expr):
    """Real constant."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def evaluate(self, data):
        n = len(next(iter(data.values()))) if data else 1
        return np.full(n, self.value)

    def complexity(self) -> int:
        return 1

    def clone(self) -> "Const":
        return Const(self.value)

    def __str__(self) -> str:
        return f"{self.value:.6g}"


class Var(Expr):
    """Named feature."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, data):
        return np.asarray(data[self.name], dtype=np.float64)

    def complexity(self) -> int:
        return 1

    def clone(self) -> "Var":
        return Var(self.name)

    def __str__(self) -> str:
        return self.name


class Call(Expr):
    """Operator application."""

    __slots__ = ("op", "args")

    def __init__(self, op: Operator, args: list[Expr]):
        if len(args) != op.arity:
            raise ValueError(f"{op.name} expects {op.arity} args, got {len(args)}")
        self.op = op
        self.args = list(args)

    def evaluate(self, data):
        return self.op(*[a.evaluate(data) for a in self.args])

    def complexity(self) -> int:
        return self.op.weight + sum(a.complexity() for a in self.args)

    def children(self) -> list[Expr]:
        return self.args

    def clone(self) -> "Call":
        return Call(self.op, [a.clone() for a in self.args])

    def __str__(self) -> str:
        return self.op.format(*[str(a) for a in self.args])


def random_expr(rng: np.random.Generator, variables: list[str],
                max_depth: int = 3, p_const: float = 0.25,
                unary_names: list[str] | None = None,
                binary_names: list[str] | None = None,
                const_scale: float = 10.0) -> Expr:
    """Grow a random expression tree (ramped half-and-half style)."""
    from .operators import DEFAULT_BINARY, DEFAULT_UNARY

    unary = [UNARY_OPS[n] for n in (unary_names or DEFAULT_UNARY)]
    binary = [BINARY_OPS[n] for n in (binary_names or DEFAULT_BINARY)]

    def leaf() -> Expr:
        if rng.random() < p_const:
            return Const(round(float(rng.normal(0.0, const_scale)), 3))
        return Var(str(rng.choice(variables)))

    def grow(depth: int) -> Expr:
        if depth >= max_depth or rng.random() < 0.3:
            return leaf()
        if unary and rng.random() < 0.25:
            op = unary[rng.integers(len(unary))]
            return Call(op, [grow(depth + 1)])
        op = binary[rng.integers(len(binary))]
        return Call(op, [grow(depth + 1), grow(depth + 1)])

    return grow(0)
