"""Operator definitions for symbolic regression.

The paper's operator set: ``+, −, *, /, >, <, pow, exp, inv, log`` plus
real constants, with ``pow/exp/inv/log`` weighted 3× in the complexity
measure (Section 6). All implementations are *protected*: they never
produce NaN/Inf on finite inputs, so a GA individual can always be scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Operator", "UNARY_OPS", "BINARY_OPS", "DEFAULT_UNARY", "DEFAULT_BINARY",
           "complexity_weight"]

_EPS = 1e-12
_CLIP = 1e12


def _protect(x: np.ndarray) -> np.ndarray:
    return np.clip(np.nan_to_num(x, nan=0.0, posinf=_CLIP, neginf=-_CLIP),
                   -_CLIP, _CLIP)


@dataclass(frozen=True)
class Operator:
    """A primitive function with arity, complexity weight, and printer."""

    name: str
    arity: int
    fn: Callable[..., np.ndarray]
    weight: int = 1
    infix: str | None = None

    def __call__(self, *args: np.ndarray) -> np.ndarray:
        return _protect(self.fn(*args))

    def format(self, *parts: str) -> str:
        if self.infix is not None:
            return f"({parts[0]} {self.infix} {parts[1]})"
        return f"{self.name}({', '.join(parts)})"


def _safe_div(a, b):
    return a / np.where(np.abs(b) < _EPS, np.sign(b) * _EPS + (b == 0) * _EPS, b)


def _safe_log(a):
    return np.log(np.abs(a) + _EPS)


def _safe_exp(a):
    return np.exp(np.clip(a, -50.0, 50.0))


def _safe_pow(a, b):
    return np.power(np.abs(a) + _EPS, np.clip(b, -10.0, 10.0))


def _safe_inv(a):
    return 1.0 / np.where(np.abs(a) < _EPS, np.sign(a) * _EPS + (a == 0) * _EPS, a)


BINARY_OPS: dict[str, Operator] = {
    "add": Operator("add", 2, np.add, 1, infix="+"),
    "sub": Operator("sub", 2, np.subtract, 1, infix="-"),
    "mul": Operator("mul", 2, np.multiply, 1, infix="*"),
    "div": Operator("div", 2, _safe_div, 1, infix="/"),
    "pow": Operator("pow", 2, _safe_pow, 3),
    "gt": Operator("gt", 2, lambda a, b: (a > b).astype(np.float64), 1, infix=">"),
    "lt": Operator("lt", 2, lambda a, b: (a < b).astype(np.float64), 1, infix="<"),
}

UNARY_OPS: dict[str, Operator] = {
    "exp": Operator("exp", 1, _safe_exp, 3),
    "log": Operator("log", 1, _safe_log, 3),
    "inv": Operator("inv", 1, _safe_inv, 3),
    "abs": Operator("abs", 1, np.abs, 1),
    "neg": Operator("neg", 1, np.negative, 1),
}

# default GA search set — the paper's operators (comparisons included)
DEFAULT_BINARY = ["add", "sub", "mul", "div", "pow"]
DEFAULT_UNARY = ["exp", "log", "inv", "abs"]


def complexity_weight(name: str) -> int:
    """Weight of one operator occurrence in the paper's complexity count."""
    if name in BINARY_OPS:
        return BINARY_OPS[name].weight
    if name in UNARY_OPS:
        return UNARY_OPS[name].weight
    return 1
