"""Genetic-algorithm symbolic regression ("brute force genetic algorithm"
minimizing MAE, Section 6 of the paper).

Standard GP machinery: tournament selection, subtree crossover, three
mutation kinds (operator point-change, subtree replacement, constant
jitter), elitism, and a small parsimony pressure. A Pareto archive of the
best expression at each complexity level is maintained across generations
— the input to the paper's model-selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .expr import Call, Const, Expr, Var, random_expr
from .operators import BINARY_OPS, DEFAULT_BINARY, DEFAULT_UNARY, UNARY_OPS

__all__ = ["SymbolicRegressionConfig", "SymbolicRegressor", "ParetoEntry"]


@dataclass
class SymbolicRegressionConfig:
    population_size: int = 200
    generations: int = 40
    linear_scaling: bool = True      # fit y ≈ a·expr + b analytically
    tournament_size: int = 5
    p_crossover: float = 0.6
    p_mutation: float = 0.4
    max_depth: int = 5
    max_complexity: int = 30
    parsimony: float = 1e-3          # fitness penalty per complexity unit
    elitism: int = 4
    const_scale: float = 10.0
    p_const: float = 0.25
    unary_names: list[str] = field(default_factory=lambda: list(DEFAULT_UNARY))
    binary_names: list[str] = field(default_factory=lambda: list(DEFAULT_BINARY))
    const_optimize_iters: int = 20   # hill-climb steps on elite constants
    seed: int = 0


@dataclass
class ParetoEntry:
    """Best-known expression at one complexity level."""

    complexity: int
    mae: float
    mse: float
    expr: Expr


class SymbolicRegressor:
    """GA symbolic regression over named feature arrays."""

    def __init__(self, config: SymbolicRegressionConfig | None = None):
        self.config = config or SymbolicRegressionConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.pareto: dict[int, ParetoEntry] = {}
        self.best_: Expr | None = None

    # ------------------------------------------------------------------
    def fit(self, data: dict[str, np.ndarray], target: np.ndarray
            ) -> "SymbolicRegressor":
        cfg = self.config
        target = np.asarray(target, dtype=np.float64)
        variables = sorted(data.keys())
        pop = [self._random(variables) for _ in range(cfg.population_size)]

        for _ in range(cfg.generations):
            scored = [(self._fitness(e, data, target), e) for e in pop]
            scored.sort(key=lambda t: t[0])
            self._update_pareto(pop, data, target)

            elites = [e.clone() for _, e in scored[:cfg.elitism]]
            for e in elites[:2]:
                self._optimize_constants(e, data, target)
            next_pop = elites
            while len(next_pop) < cfg.population_size:
                child = self._offspring(scored, variables)
                if child.complexity() <= cfg.max_complexity:
                    next_pop.append(child)
            pop = next_pop

        self._update_pareto(pop, data, target)
        if self.pareto:
            self.best_ = min(self.pareto.values(), key=lambda p: p.mae).expr
        return self

    # ------------------------------------------------------------------
    def pareto_front(self) -> list[ParetoEntry]:
        """Strictly-improving (complexity ↑, MAE ↓) front, sorted by complexity."""
        entries = sorted(self.pareto.values(), key=lambda p: p.complexity)
        front: list[ParetoEntry] = []
        best = np.inf
        for e in entries:
            if e.mae < best:
                front.append(e)
                best = e.mae
        return front

    # ------------------------------------------------------------------
    def _random(self, variables: list[str]) -> Expr:
        cfg = self.config
        return random_expr(self.rng, variables,
                           max_depth=int(self.rng.integers(2, cfg.max_depth + 1)),
                           p_const=cfg.p_const,
                           unary_names=cfg.unary_names,
                           binary_names=cfg.binary_names,
                           const_scale=cfg.const_scale)

    @staticmethod
    def _affine_fit(pred: np.ndarray, target: np.ndarray) -> tuple[float, float]:
        """Least-squares (a, b) minimizing ‖a·pred + b − target‖₂
        (Keijzer-style linear scaling)."""
        var = pred.var()
        if not np.isfinite(var) or var < 1e-18:
            return 0.0, float(target.mean())
        a = float(((pred - pred.mean()) * (target - target.mean())).mean() / var)
        b = float(target.mean() - a * pred.mean())
        return a, b

    def _scaled_expr(self, expr: Expr, data, target) -> Expr:
        """Wrap ``expr`` with its optimal affine transform (simplified when
        a≈1 / b≈0 so trivial scalings add no complexity)."""
        pred = expr.evaluate(data)
        a, b = self._affine_fit(pred, target)
        out = expr
        if abs(a - 1.0) > 1e-9:
            out = Call(BINARY_OPS["mul"], [out, Const(a)])
        scale = max(abs(target).max(), 1e-12)
        if abs(b) > 1e-9 * scale:
            out = Call(BINARY_OPS["add"], [out, Const(b)])
        return out

    def _fitness(self, expr: Expr, data, target) -> float:
        pred = expr.evaluate(data)
        if not np.all(np.isfinite(pred)):
            return np.inf
        if self.config.linear_scaling:
            a, b = self._affine_fit(pred, target)
            pred = a * pred + b
        mae = float(np.mean(np.abs(pred - target)))
        if not np.isfinite(mae):
            return np.inf
        return mae * (1.0 + self.config.parsimony * expr.complexity())

    def _update_pareto(self, pop: list[Expr], data, target) -> None:
        for e in pop:
            candidate = (self._scaled_expr(e, data, target).clone()
                         if self.config.linear_scaling else e.clone())
            mae = candidate.mae(data, target)
            if not np.isfinite(mae):
                continue
            c = candidate.complexity()
            cur = self.pareto.get(c)
            if cur is None or mae < cur.mae:
                self.pareto[c] = ParetoEntry(c, mae, candidate.mse(data, target),
                                             candidate)

    def _tournament(self, scored) -> Expr:
        k = self.config.tournament_size
        idx = self.rng.integers(0, len(scored), size=k)
        best = min(idx, key=lambda i: scored[i][0])
        return scored[best][1]

    def _offspring(self, scored, variables: list[str]) -> Expr:
        cfg = self.config
        parent = self._tournament(scored).clone()
        if self.rng.random() < cfg.p_crossover:
            donor = self._tournament(scored)
            parent = self._crossover(parent, donor)
        if self.rng.random() < cfg.p_mutation:
            parent = self._mutate(parent, variables)
        return parent

    # --- genetic operators --------------------------------------------
    def _replace_node(self, root: Expr, old: Expr, new: Expr) -> Expr:
        if root is old:
            return new
        for node in root.nodes():
            if isinstance(node, Call):
                for i, a in enumerate(node.args):
                    if a is old:
                        node.args[i] = new
                        return root
        return root

    def _crossover(self, a: Expr, b: Expr) -> Expr:
        nodes_a = a.nodes()
        nodes_b = b.nodes()
        target = nodes_a[self.rng.integers(len(nodes_a))]
        donor = nodes_b[self.rng.integers(len(nodes_b))].clone()
        return self._replace_node(a, target, donor)

    def _mutate(self, e: Expr, variables: list[str]) -> Expr:
        kind = self.rng.random()
        nodes = e.nodes()
        node = nodes[self.rng.integers(len(nodes))]
        if kind < 0.3:
            # subtree replacement
            sub = random_expr(self.rng, variables, max_depth=2,
                              p_const=self.config.p_const,
                              unary_names=self.config.unary_names,
                              binary_names=self.config.binary_names,
                              const_scale=self.config.const_scale)
            return self._replace_node(e, node, sub)
        if kind < 0.6 and isinstance(node, Call):
            # operator point change (same arity)
            pool = (self.config.binary_names if node.op.arity == 2
                    else self.config.unary_names)
            ops = BINARY_OPS if node.op.arity == 2 else UNARY_OPS
            node.op = ops[str(self.rng.choice(pool))]
            return e
        # constant jitter (or variable swap when no constants exist)
        consts = [n for n in nodes if isinstance(n, Const)]
        if consts:
            c = consts[self.rng.integers(len(consts))]
            c.value += float(self.rng.normal(0.0, 0.5 * (abs(c.value) + 1.0)))
        else:
            vars_ = [n for n in nodes if isinstance(n, Var)]
            if vars_:
                v = vars_[self.rng.integers(len(vars_))]
                v.name = str(self.rng.choice(variables))
        return e

    def _optimize_constants(self, e: Expr, data, target) -> None:
        """Greedy hill climbing on the expression's constants."""
        consts = [n for n in e.nodes() if isinstance(n, Const)]
        if not consts:
            return
        best = e.mae(data, target)
        for _ in range(self.config.const_optimize_iters):
            c = consts[self.rng.integers(len(consts))]
            old = c.value
            c.value += float(self.rng.normal(0.0, 0.1 * (abs(old) + 1e-2)))
            mae = e.mae(data, target)
            if mae < best:
                best = mae
            else:
                c.value = old
