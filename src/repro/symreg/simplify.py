"""Expression simplification: constant folding and algebraic identities.

GA offspring accumulate dead weight (``x*1``, ``x+0``, constant
subtrees); simplification reduces reported complexity without changing
the fitted function, which tightens the Pareto front Table 1 is built
from. Only identities that are exact under the *protected* operator
semantics are applied.
"""

from __future__ import annotations

import numpy as np

from .expr import Call, Const, Expr, Var
from .operators import BINARY_OPS, UNARY_OPS

__all__ = ["simplify", "fold_constants"]

_EMPTY: dict[str, np.ndarray] = {}


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant subtrees to single :class:`Const` nodes."""
    if isinstance(expr, (Const, Var)):
        return expr.clone()
    assert isinstance(expr, Call)
    args = [fold_constants(a) for a in expr.args]
    if all(isinstance(a, Const) for a in args):
        value = float(Call(expr.op, args).evaluate(_EMPTY)[0])
        return Const(value)
    return Call(expr.op, args)


def _is_const(e: Expr, value: float | None = None) -> bool:
    if not isinstance(e, Const):
        return False
    return value is None or e.value == value


def _apply_identities(expr: Expr) -> Expr:
    if not isinstance(expr, Call):
        return expr
    args = [_apply_identities(a) for a in expr.args]
    name = expr.op.name

    if name == "add":
        a, b = args
        if _is_const(a, 0.0):
            return b
        if _is_const(b, 0.0):
            return a
    elif name == "sub":
        a, b = args
        if _is_const(b, 0.0):
            return a
    elif name == "mul":
        a, b = args
        if _is_const(a, 1.0):
            return b
        if _is_const(b, 1.0):
            return a
        if _is_const(a, 0.0) or _is_const(b, 0.0):
            return Const(0.0)
    elif name == "div":
        a, b = args
        if _is_const(b, 1.0):
            return a
        if _is_const(a, 0.0):
            return Const(0.0)
    elif name == "pow":
        a, b = args
        if _is_const(b, 1.0) and isinstance(a, Call) and a.op.name == "abs":
            # protected pow(x, 1) == |x| + eps ≈ abs(x); keep abs form
            return a
        if _is_const(b, 0.0):
            return Const(1.0)
    elif name == "neg":
        (a,) = args
        if isinstance(a, Call) and a.op.name == "neg":
            return a.args[0]
        if isinstance(a, Const):
            return Const(-a.value)
    elif name == "abs":
        (a,) = args
        if isinstance(a, Call) and a.op.name == "abs":
            return a
        if isinstance(a, Const):
            return Const(abs(a.value))

    return Call(expr.op, args)


def simplify(expr: Expr, max_passes: int = 10) -> Expr:
    """Fold constants and apply exact identities to a fixed point.

    The result always satisfies
    ``simplify(e).evaluate(data) == e.evaluate(data)`` for data where the
    protected semantics do not engage (verified property-based in tests)
    and never has higher complexity.
    """
    current = expr
    for _ in range(max_passes):
        nxt = _apply_identities(fold_constants(current))
        if str(nxt) == str(current):
            return nxt
        current = nxt
    return current
