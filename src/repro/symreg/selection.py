"""Model selection over the Pareto front — the paper's Occam's-razor rule.

Among Pareto-optimal models ordered by complexity, the chosen expression
maximizes the fractional drop in error over the increase in complexity
relative to the next-best (previous) model:

    score = −Δlog(MAE) / Δc
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ga import ParetoEntry

__all__ = ["ScoredEntry", "score_front", "select_best"]


@dataclass
class ScoredEntry:
    """Pareto entry plus its selection score and flags (a Table 1 row)."""

    complexity: int
    mae: float
    mse: float
    expr_str: str
    score: float
    dimensional_ok: bool | None = None
    chosen: bool = False


def score_front(front: list[ParetoEntry], floor: float = 1e-12) -> list[ScoredEntry]:
    """Score each front entry against its predecessor (first gets −inf)."""
    rows: list[ScoredEntry] = []
    for i, e in enumerate(front):
        if i == 0:
            score = -np.inf
        else:
            prev = front[i - 1]
            dc = e.complexity - prev.complexity
            dlog = np.log(max(e.mae, floor)) - np.log(max(prev.mae, floor))
            score = -dlog / dc if dc > 0 else -np.inf
        rows.append(ScoredEntry(e.complexity, e.mae, e.mse, str(e.expr), score))
    return rows


def select_best(front: list[ParetoEntry]) -> tuple[int, list[ScoredEntry]]:
    """Return (index of the chosen model, scored rows) for a Pareto front."""
    rows = score_front(front)
    if not rows:
        raise ValueError("empty Pareto front")
    if len(rows) == 1:
        rows[0].chosen = True
        return 0, rows
    best = int(np.argmax([r.score for r in rows]))
    rows[best].chosen = True
    return best, rows
