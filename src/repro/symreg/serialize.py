"""Expression serialization (JSON) and LaTeX rendering."""

from __future__ import annotations

import json

from .expr import Call, Const, Expr, Var
from .operators import BINARY_OPS, UNARY_OPS

__all__ = ["expr_to_dict", "expr_from_dict", "expr_to_json", "expr_from_json",
           "to_latex"]


def expr_to_dict(expr: Expr) -> dict:
    """Recursive plain-dict encoding (stable across versions)."""
    if isinstance(expr, Const):
        return {"type": "const", "value": expr.value}
    if isinstance(expr, Var):
        return {"type": "var", "name": expr.name}
    assert isinstance(expr, Call)
    return {"type": "call", "op": expr.op.name,
            "args": [expr_to_dict(a) for a in expr.args]}


def expr_from_dict(data: dict) -> Expr:
    kind = data.get("type")
    if kind == "const":
        return Const(float(data["value"]))
    if kind == "var":
        return Var(str(data["name"]))
    if kind == "call":
        name = data["op"]
        op = BINARY_OPS.get(name) or UNARY_OPS.get(name)
        if op is None:
            raise KeyError(f"unknown operator {name!r}")
        return Call(op, [expr_from_dict(a) for a in data["args"]])
    raise ValueError(f"bad node type {kind!r}")


def expr_to_json(expr: Expr) -> str:
    return json.dumps(expr_to_dict(expr))


def expr_from_json(text: str) -> Expr:
    return expr_from_dict(json.loads(text))


_LATEX_NAMES = {
    "dx": r"\Delta x", "dx_x": r"\Delta x_{x}", "dx_y": r"\Delta x_{y}",
    "r1": "r_{1}", "r2": "r_{2}", "m1": "m_{1}", "m2": "m_{2}",
}


def _latex(expr: Expr) -> str:
    if isinstance(expr, Const):
        v = expr.value
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.4g}"
    if isinstance(expr, Var):
        return _LATEX_NAMES.get(expr.name, expr.name)
    assert isinstance(expr, Call)
    name = expr.op.name
    parts = [_latex(a) for a in expr.args]
    if name == "add":
        return f"\\left({parts[0]} + {parts[1]}\\right)"
    if name == "sub":
        return f"\\left({parts[0]} - {parts[1]}\\right)"
    if name == "mul":
        return f"{parts[0]} \\cdot {parts[1]}"
    if name == "div":
        return f"\\frac{{{parts[0]}}}{{{parts[1]}}}"
    if name == "pow":
        return f"{{{parts[0]}}}^{{{parts[1]}}}"
    if name == "exp":
        return f"e^{{{parts[0]}}}"
    if name == "log":
        return f"\\log\\left({parts[0]}\\right)"
    if name == "inv":
        return f"\\frac{{1}}{{{parts[0]}}}"
    if name == "abs":
        return f"\\left|{parts[0]}\\right|"
    if name == "neg":
        return f"-{parts[0]}"
    if name == "gt":
        return f"\\left[{parts[0]} > {parts[1]}\\right]"
    if name == "lt":
        return f"\\left[{parts[0]} < {parts[1]}\\right]"
    raise KeyError(f"no LaTeX rule for operator {name!r}")


def to_latex(expr: Expr) -> str:
    """Render an expression as LaTeX (Table-1 style equations)."""
    return _latex(expr)
