"""Dimensional-analysis check for symbolic expressions (Table 1's D_a column).

Dimensions are exponent vectors over (mass, length, time). Constants are
*wildcards* — they may carry any dimension (a fitted constant can absorb
units) — so the check asks: *can* consistent dimensions be assigned to
every constant such that the expression evaluates to the target dimension?

Rules (matching the paper's usage):

* ``+``/``−`` unify their operands' dimensions.
* ``*``/``/`` add/subtract dimensions; a wildcard operand makes the
  product a wildcard (the constant absorbs whatever is needed).
* ``exp``/``log`` require a dimensionless argument and yield dimensionless.
* ``inv`` negates the dimension.
* ``pow`` requires a dimensionless (or wildcard) base unless the exponent
  is a constant integer.
* ``abs``/``neg`` pass dimensions through; comparisons unify operands and
  yield dimensionless.
"""

from __future__ import annotations

import numpy as np

from .expr import Call, Const, Expr, Var

__all__ = ["Dim", "DIMENSIONLESS", "LENGTH", "MASS", "TIME", "FORCE", "STIFFNESS",
           "check_dimensions", "DimensionError"]

Dim = tuple[float, float, float]  # (mass, length, time) exponents

DIMENSIONLESS: Dim = (0.0, 0.0, 0.0)
MASS: Dim = (1.0, 0.0, 0.0)
LENGTH: Dim = (0.0, 1.0, 0.0)
TIME: Dim = (0.0, 0.0, 1.0)
FORCE: Dim = (1.0, 1.0, -2.0)
STIFFNESS: Dim = (1.0, 0.0, -2.0)  # force / length


class DimensionError(Exception):
    """Raised internally when no consistent assignment exists."""


def _unify(a: Dim | None, b: Dim | None) -> Dim | None:
    """None is a wildcard; equal known dims unify; otherwise inconsistent."""
    if a is None:
        return b
    if b is None:
        return a
    if np.allclose(a, b):
        return a
    raise DimensionError(f"cannot unify {a} and {b}")


def _infer(node: Expr, var_dims: dict[str, Dim]) -> Dim | None:
    if isinstance(node, Const):
        return None  # wildcard
    if isinstance(node, Var):
        if node.name not in var_dims:
            raise KeyError(f"no dimension declared for variable {node.name!r}")
        return var_dims[node.name]
    assert isinstance(node, Call)
    name = node.op.name
    args = [_infer(a, var_dims) for a in node.args]

    if name in ("add", "sub"):
        return _unify(args[0], args[1])
    if name == "mul":
        if args[0] is None or args[1] is None:
            return None
        return tuple(x + y for x, y in zip(args[0], args[1]))  # type: ignore[return-value]
    if name == "div":
        if args[0] is None or args[1] is None:
            return None
        return tuple(x - y for x, y in zip(args[0], args[1]))  # type: ignore[return-value]
    if name in ("exp", "log"):
        _unify(args[0], DIMENSIONLESS)   # argument must be dimensionless
        return DIMENSIONLESS
    if name == "inv":
        if args[0] is None:
            return None
        return tuple(-x for x in args[0])  # type: ignore[return-value]
    if name in ("abs", "neg"):
        return args[0]
    if name in ("gt", "lt"):
        _unify(args[0], args[1])
        return DIMENSIONLESS
    if name == "pow":
        base, expo = args
        _unify(expo, DIMENSIONLESS)
        if base is None:
            return None
        k = _const_value(node.args[1])
        if k is not None and float(k).is_integer():
            return tuple(x * k for x in base)  # type: ignore[return-value]
        _unify(base, DIMENSIONLESS)
        return DIMENSIONLESS
    raise KeyError(f"no dimensional rule for operator {name!r}")


def _const_value(node: Expr) -> float | None:
    if isinstance(node, Const):
        return node.value
    return None


def check_dimensions(expr: Expr, var_dims: dict[str, Dim],
                     target: Dim | None = None) -> bool:
    """True when a consistent dimension assignment exists (and, if
    ``target`` is given, when the result can carry that dimension)."""
    try:
        result = _infer(expr, var_dims)
    except DimensionError:
        return False
    if target is None or result is None:
        return True
    return bool(np.allclose(result, target))
