"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "default_rng"]


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Project-wide RNG constructor (PCG64)."""
    return np.random.default_rng(seed)


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init — appropriate for tanh/linear layers."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def kaiming_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He uniform init — appropriate for ReLU layers."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
