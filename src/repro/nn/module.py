"""Minimal neural-network module system over the autodiff engine."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autodiff import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A Tensor that is registered as a trainable leaf of a Module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: tracks Parameters and sub-Modules by attribute assignment.

    Provides ``parameters()``, ``state_dict()``/``load_state_dict()``,
    ``zero_grad()`` — the subset of the torch.nn.Module API the paper's
    training loops rely on.
    """

    def __init__(self):
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, (list, tuple)) and value and all(isinstance(v, Module) for v in value):
            for i, v in enumerate(value):
                self._modules[f"{name}.{i}"] = v
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth-first, deterministically."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            arr = np.asarray(state[name])
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.astype(p.data.dtype).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
