"""Neural-network building blocks over the autodiff engine."""

from .module import Module, Parameter
from .mlp import MLP, LayerNorm, Linear, Sequential
from .optim import SGD, Adam, ExponentialDecay, Optimizer, clip_grad_norm
from .init import default_rng, kaiming_uniform, xavier_uniform

__all__ = [
    "Module", "Parameter",
    "MLP", "LayerNorm", "Linear", "Sequential",
    "SGD", "Adam", "ExponentialDecay", "Optimizer", "clip_grad_norm",
    "default_rng", "kaiming_uniform", "xavier_uniform",
]
