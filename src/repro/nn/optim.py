"""Gradient-based optimizers (SGD, Adam) and LR schedules."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autodiff import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "ExponentialDecay", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm. Parameters with ``grad is None`` are skipped.
    The norm is accumulated in float64 regardless of parameter dtype, and a
    non-finite norm (any NaN/Inf gradient) drops the offending gradients
    instead of scaling garbage into the weights: every ``grad`` is set to
    ``None`` so the following ``step()`` skips the update entirely.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(
        float((p.grad.astype(np.float64, copy=False) ** 2).sum())
        for p in params)))
    if not np.isfinite(total):
        for p in params:
            p.grad = None
        return total
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- checkpointing --------------------------------------------------
    # ``state_dict`` splits into JSON-serializable scalars ("hyper") and
    # per-parameter moment arrays ("slots": name -> list aligned with
    # ``self.params``), so a checkpoint writer can put the arrays in an
    # .npz and the scalars in a manifest.

    def state_dict(self) -> dict:
        return {"hyper": {"lr": self.lr}, "slots": {}}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["hyper"]["lr"])
        for name, arrays in state.get("slots", {}).items():
            own = getattr(self, f"_{name}")
            if len(arrays) != len(own):
                raise ValueError(
                    f"optimizer slot '{name}' has {len(arrays)} arrays, "
                    f"expected {len(own)}")
            for i, arr in enumerate(arrays):
                arr = np.asarray(arr)
                if arr.shape != own[i].shape:
                    raise ValueError(
                        f"optimizer slot '{name}[{i}]' shape {arr.shape} "
                        f"!= {own[i].shape}")
                own[i] = arr.astype(own[i].dtype, copy=True)


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad

    def state_dict(self) -> dict:
        return {"hyper": {"lr": self.lr, "momentum": self.momentum},
                "slots": {"velocity": [v.copy() for v in self._velocity]}}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["hyper"].get("momentum", self.momentum))


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(params, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.b1 ** self.t
        bc2 = 1.0 - self.b2 ** self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * (g * g)
            p.data = p.data - self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_dict(self) -> dict:
        return {"hyper": {"lr": self.lr, "b1": self.b1, "b2": self.b2,
                          "eps": self.eps, "t": self.t},
                "slots": {"m": [m.copy() for m in self._m],
                          "v": [v.copy() for v in self._v]}}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        h = state["hyper"]
        self.b1 = float(h.get("b1", self.b1))
        self.b2 = float(h.get("b2", self.b2))
        self.eps = float(h.get("eps", self.eps))
        self.t = int(h.get("t", self.t))


class ExponentialDecay:
    """GNS training schedule: lr(t) = final + (init - final) · decay^(t/steps)."""

    def __init__(self, init_lr: float, final_lr: float = 0.0,
                 decay_rate: float = 0.1, decay_steps: int = int(5e6)):
        self.init_lr = init_lr
        self.final_lr = final_lr
        self.decay_rate = decay_rate
        self.decay_steps = decay_steps

    def __call__(self, step: int) -> float:
        return self.final_lr + (self.init_lr - self.final_lr) * self.decay_rate ** (step / self.decay_steps)

    def apply(self, optimizer: Optimizer, step: int) -> float:
        lr = self(step)
        optimizer.lr = lr
        return lr
