"""Linear layers and the MLP block used throughout GNS / MeshNet.

The paper's encoder, processor and decoder are all built from 2-hidden-layer
ReLU MLPs followed (except the decoder) by LayerNorm, matching
Sanchez-Gonzalez et al. (2020).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..autodiff.fused import mlp_forward, mlp_forward_numpy
from ..autodiff.functional import layer_norm
from .init import kaiming_uniform, xavier_uniform
from .module import Module, Parameter

__all__ = ["Linear", "LayerNorm", "MLP", "Sequential"]


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, activation: str = "relu"):
        super().__init__()
        init = kaiming_uniform if activation == "relu" else xavier_uniform
        self.weight = Parameter(init(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float64))
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias

    def arrays(self, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
        """Weight/bias as plain arrays in ``dtype``.

        Non-float64 casts are cached and invalidated by identity: the
        optimizers rebind ``p.data`` on every step, so a stale cache is
        detected without version counters.
        """
        if dtype == np.float64:
            return self.weight.data, self.bias.data
        cache = getattr(self, "_cast_cache", None)
        if (cache is None or cache[0] is not self.weight.data
                or cache[1].dtype != dtype):
            # Fortran order: sgemm with a column-major B runs ~9% faster
            # here than with row-major (measured on the fp32 fast path)
            cache = (self.weight.data,
                     np.asfortranarray(self.weight.data.astype(dtype)),
                     self.bias.data.astype(dtype))
            object.__setattr__(self, "_cast_cache", cache)
        return cache[1], cache[2]


class LayerNorm(Module):
    """LayerNorm over the last axis with learnable scale/shift."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(features, dtype=np.float64))
        self.beta = Parameter(np.zeros(features, dtype=np.float64))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.gamma, self.beta, eps=self.eps)

    def arrays(self, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
        """Gamma/beta as plain arrays in ``dtype`` (identity-cached cast,
        same scheme as :meth:`Linear.arrays`)."""
        if dtype == np.float64:
            return self.gamma.data, self.beta.data
        cache = getattr(self, "_cast_cache", None)
        if (cache is None or cache[0] is not self.gamma.data
                or cache[1].dtype != dtype):
            cache = (self.gamma.data, self.gamma.data.astype(dtype),
                     self.beta.data.astype(dtype))
            object.__setattr__(self, "_cast_cache", cache)
        return cache[1], cache[2]


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    Parameters
    ----------
    sizes:
        ``[in, hidden..., out]`` layer widths.
    layer_norm:
        Append LayerNorm after the output (GNS encoder/processor style).
    rng:
        NumPy Generator for weight init.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator,
                 layer_norm: bool = False):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.linears = [
            Linear(sizes[i], sizes[i + 1], rng,
                   activation="relu" if i + 2 < len(sizes) else "linear")
            for i in range(len(sizes) - 1)
        ]
        self.norm = LayerNorm(sizes[-1]) if layer_norm else None
        self.sizes = list(sizes)

    def forward(self, x: Tensor) -> Tensor:
        # single fused tape node for the whole MLP (one VJP closure
        # instead of ~4 per layer); shares numpy kernels with
        # forward_numpy, so both paths are bitwise-identical in float64
        gamma, beta, eps = (None, None, 1e-5)
        if self.norm is not None:
            gamma, beta, eps = self.norm.gamma, self.norm.beta, self.norm.eps
        return mlp_forward(x, [lin.weight for lin in self.linears],
                           [lin.bias for lin in self.linears],
                           gamma, beta, eps)

    def fused_params(self) -> tuple:
        """(weights, biases, gamma, beta, eps) for the fused tape ops."""
        gamma, beta, eps = (None, None, 1e-5)
        if self.norm is not None:
            gamma, beta, eps = self.norm.gamma, self.norm.beta, self.norm.eps
        return ([lin.weight for lin in self.linears],
                [lin.bias for lin in self.linears], gamma, beta, eps)

    def arrays(self, dtype=np.float64) -> tuple:
        """Per-layer ``(weights, biases, gamma, beta, eps)`` plain arrays
        in ``dtype`` for the no-grad kernels (casts are cached)."""
        ws, bs = [], []
        for lin in self.linears:
            w, b = lin.arrays(dtype)
            ws.append(w)
            bs.append(b)
        gamma = beta = None
        eps = 1e-5
        if self.norm is not None:
            gamma, beta = self.norm.arrays(dtype)
            eps = self.norm.eps
        return ws, bs, gamma, beta, eps

    def forward_numpy(self, x: np.ndarray, getbuf=None, tag: str = "mlp",
                      backend=None) -> np.ndarray:
        """Tape-free inference path (no autodiff overhead).

        Runs in ``x.dtype`` — pass float32 inputs for ~2× faster CPU
        inference (the precision the paper's GPU models use anyway).
        Numerically identical to :meth:`forward` in float64. ``getbuf``
        optionally supplies reusable output buffers (see
        :class:`repro.utils.buffers.Workspace`); ``backend`` pins the
        array backend whose float32 kernels the fused tail may use.
        """
        ws, bs, gamma, beta, eps = self.arrays(x.dtype.type)
        return mlp_forward_numpy(x, ws, bs, gamma, beta, eps,
                                 getbuf=getbuf, tag=tag, backend=backend)
