"""Mesh-graph construction for MeshNet (Section 3.2).

The simulation mesh is static: nodes carry a reference coordinate x_i and
dynamical quantities q_i (velocity); mesh edges carry relative mesh-space
displacements. Node type (fluid / inlet / outlet / wall) is one-hot
encoded, exactly as in MeshGraphNets (Pfaff et al. 2021), so the network
can learn boundary behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, as_tensor, concatenate
from ..autodiff.functional import norm
from ..autodiff.scatter import gather
from ..graph import Graph, grid_mesh_edges

__all__ = ["MeshSpec", "NUM_NODE_TYPES", "NodeType", "build_mesh_graph",
           "mesh_from_lattice"]

NUM_NODE_TYPES = 4


class NodeType:
    FLUID = 0
    INLET = 1
    OUTLET = 2
    WALL = 3


@dataclass
class MeshSpec:
    """Static mesh description shared by every time step."""

    coords: np.ndarray        # (N, 2) mesh-space node coordinates
    senders: np.ndarray       # (E,)
    receivers: np.ndarray     # (E,)
    node_types: np.ndarray    # (N,) ints in [0, NUM_NODE_TYPES)

    def __post_init__(self):
        self.coords = np.asarray(self.coords, dtype=np.float64)
        self.node_types = np.asarray(self.node_types, dtype=np.int64)
        if self.node_types.shape[0] != self.coords.shape[0]:
            raise ValueError("node_types length must match coords")
        if self.node_types.min() < 0 or self.node_types.max() >= NUM_NODE_TYPES:
            raise ValueError("node type out of range")

    @property
    def num_nodes(self) -> int:
        return self.coords.shape[0]

    def one_hot_types(self) -> np.ndarray:
        out = np.zeros((self.num_nodes, NUM_NODE_TYPES))
        out[np.arange(self.num_nodes), self.node_types] = 1.0
        return out

    def edge_features(self, length_scale: float | None = None) -> np.ndarray:
        """Static relative-displacement edge features ``[Δx, ‖Δx‖]``."""
        rel = self.coords[self.senders] - self.coords[self.receivers]
        if length_scale is None:
            length_scale = float(np.linalg.norm(rel, axis=1).mean()) or 1.0
        rel = rel / length_scale
        dist = np.linalg.norm(rel, axis=1, keepdims=True)
        return np.concatenate([rel, dist], axis=1)


def mesh_from_lattice(nx: int, ny: int, node_types: np.ndarray,
                      spacing: float = 1.0) -> MeshSpec:
    """Structured mesh over an ``nx × ny`` lattice (row-major ids)."""
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1) * spacing
    senders, receivers = grid_mesh_edges(nx, ny)
    return MeshSpec(coords, senders, receivers, node_types.ravel())


def build_mesh_graph(spec: MeshSpec, velocities,
                     velocity_scale: float = 1.0,
                     static_edge_features: np.ndarray | None = None) -> Graph:
    """Input graph for one MeshNet prediction step.

    ``velocities`` may be a Tensor (differentiable path) or ndarray.
    """
    v = as_tensor(velocities)
    if v.shape[0] != spec.num_nodes:
        raise ValueError("velocity count must match mesh nodes")
    node_feats = concatenate(
        [v * (1.0 / velocity_scale), Tensor(spec.one_hot_types())], axis=1)
    if static_edge_features is None:
        static_edge_features = spec.edge_features()
    return Graph(node_feats, Tensor(static_edge_features),
                 spec.senders, spec.receivers)
