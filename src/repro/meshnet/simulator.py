"""MeshNet: learned mesh-based fluid simulator (Section 3.2, Fig 2).

Same Encode–Process–Decode trunk as the particle GNS; the decoder output
is the per-node *velocity change* Δq, integrated forward in time. Node
types let the model learn boundary behaviour; at rollout time hard
constraints re-impose the prescribed inlet velocity and zero wall
velocity (the mesh analogue of the GNS boundary treatment).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad
from ..gns.network import EncodeProcessDecode, GNSNetworkConfig
from ..nn import Module
from ..utils.buffers import Workspace
from .meshgraph import MeshSpec, NUM_NODE_TYPES, NodeType, build_mesh_graph

__all__ = ["MeshNetSimulator"]


class MeshNetSimulator(Module):
    """Autoregressive velocity-field predictor on a fixed mesh."""

    def __init__(self, spec: MeshSpec,
                 network_config: GNSNetworkConfig | None = None,
                 velocity_scale: float = 1.0,
                 delta_scale: float = 1.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        cfg = network_config or GNSNetworkConfig(
            latent_size=32, mlp_hidden_size=32, message_passing_steps=4)
        cfg.node_input_size = 2 + NUM_NODE_TYPES
        cfg.edge_input_size = 3
        cfg.output_size = 2
        self.network = EncodeProcessDecode(cfg, rng)
        self.network_config = cfg
        self.spec = spec
        self.velocity_scale = float(velocity_scale)
        self.delta_scale = float(delta_scale)
        self._static_edges = spec.edge_features()
        self._constrained = (spec.node_types == NodeType.INLET) | \
                            (spec.node_types == NodeType.WALL)
        # the mesh never changes: the one-hot type block is written once,
        # and MLP/scratch buffers are reused across every step
        self._node_feats = np.empty((spec.coords.shape[0],
                                     cfg.node_input_size))
        self._node_feats[:, 2:] = spec.one_hot_types()
        self._work = Workspace()

    # ------------------------------------------------------------------
    def predict_delta(self, velocities) -> Tensor:
        """Normalized Δvelocity prediction for the current field."""
        graph = build_mesh_graph(self.spec, velocities, self.velocity_scale,
                                 self._static_edges)
        return self.network(graph)

    def step(self, velocities: np.ndarray,
             boundary_values: np.ndarray | None = None,
             timers: dict | None = None) -> np.ndarray:
        """One forward step with hard boundary re-imposition (tape-free).

        The mesh graph is static, so connectivity and the one-hot type
        columns are built once in ``__init__``; only the two velocity
        columns are rewritten here, and the network runs through reusable
        workspace buffers.
        """
        np.divide(velocities, self.velocity_scale,
                  out=self._node_feats[:, :2])
        delta = self.network.forward_fast(
            self._node_feats, self._static_edges, self.spec.senders,
            self.spec.receivers, work=self._work, timers=timers
        ) * self.delta_scale
        nxt = velocities + delta
        if boundary_values is not None:
            nxt[self._constrained] = boundary_values[self._constrained]
        return nxt

    def rollout(self, initial_velocities: np.ndarray, num_steps: int,
                boundary_values: np.ndarray | None = None,
                timers: dict | None = None) -> np.ndarray:
        """Autoregressive rollout → ``(num_steps+1, N, 2)``.

        ``boundary_values`` defaults to the initial field (steady inlet).
        ``timers`` may map ``"encode"/"process"/"decode"`` to
        :class:`repro.utils.Timer` objects for a per-stage breakdown.
        """
        if boundary_values is None:
            boundary_values = initial_velocities
        frames = [np.asarray(initial_velocities, dtype=np.float64)]
        for _ in range(num_steps):
            frames.append(self.step(frames[-1], boundary_values, timers))
        return np.stack(frames, axis=0)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist weights + mesh + normalization scales to one ``.npz``."""
        from ..data.io import save_checkpoint

        extra = {
            "network_config": vars(self.network_config),
            "velocity_scale": self.velocity_scale,
            "delta_scale": self.delta_scale,
            "mesh": {
                "coords": self.spec.coords.tolist(),
                "senders": self.spec.senders.tolist(),
                "receivers": self.spec.receivers.tolist(),
                "node_types": self.spec.node_types.tolist(),
            },
        }
        save_checkpoint(path, self.state_dict(), extra)

    @classmethod
    def load(cls, path) -> "MeshNetSimulator":
        from ..data.io import load_checkpoint

        state, extra = load_checkpoint(path)
        mesh = extra["mesh"]
        spec = MeshSpec(
            coords=np.asarray(mesh["coords"], dtype=np.float64),
            senders=np.asarray(mesh["senders"], dtype=np.intp),
            receivers=np.asarray(mesh["receivers"], dtype=np.intp),
            node_types=np.asarray(mesh["node_types"], dtype=np.int64),
        )
        cfg = GNSNetworkConfig(**extra["network_config"])
        sim = cls(spec, cfg, velocity_scale=extra["velocity_scale"],
                  delta_scale=extra["delta_scale"])
        sim.load_state_dict(state)
        return sim
