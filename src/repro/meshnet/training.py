"""MeshNet training on recorded CFD velocity fields."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor
from ..autodiff.functional import mse_loss
from ..nn import Adam, clip_grad_norm
from .meshgraph import MeshSpec
from .simulator import MeshNetSimulator

__all__ = ["MeshTrainingConfig", "MeshNetTrainer", "fields_to_nodes",
           "velocity_field_rmse"]


def fields_to_nodes(fields: np.ndarray, subsample: int = 1) -> np.ndarray:
    """``(T, nx, ny, 2)`` lattice fields → ``(T, N, 2)`` node velocities
    (row-major node ordering matching :func:`mesh_from_lattice`)."""
    sub = fields[:, ::subsample, ::subsample, :]
    t = sub.shape[0]
    return sub.reshape(t, -1, 2)


def velocity_field_rmse(predicted: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-frame RMSE between node velocity fields → ``(T,)``."""
    t = min(predicted.shape[0], truth.shape[0])
    diff = predicted[:t] - truth[:t]
    return np.sqrt((diff ** 2).mean(axis=(1, 2)))


@dataclass
class MeshTrainingConfig:
    learning_rate: float = 1e-3
    #: input-velocity corruption for rollout robustness; ``None`` (default)
    #: auto-calibrates to 0.3× the per-frame velocity-change scale so the
    #: noise-correction signal never swamps the dynamics signal
    noise_std: float | None = None
    batch_size: int = 1
    grad_clip: float = 1.0
    seed: int = 0


class MeshNetTrainer:
    """One-step supervision on consecutive velocity fields."""

    def __init__(self, simulator: MeshNetSimulator,
                 node_velocity_frames: np.ndarray,
                 config: MeshTrainingConfig | None = None):
        if node_velocity_frames.ndim != 3:
            raise ValueError("expected (T, N, 2) node velocity frames")
        if node_velocity_frames.shape[0] < 2:
            raise ValueError("need at least two frames")
        self.simulator = simulator
        self.frames = np.asarray(node_velocity_frames, dtype=np.float64)
        self.config = config or MeshTrainingConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(list(simulator.parameters()),
                              lr=self.config.learning_rate)
        self.loss_history: list[float] = []

        # calibrate normalization scales from the data
        deltas = np.diff(self.frames, axis=0)
        simulator.velocity_scale = float(np.abs(self.frames).std()) or 1.0
        simulator.delta_scale = float(np.abs(deltas).std()) or 1.0
        if self.config.noise_std is None:
            self.config.noise_std = 0.3 * simulator.delta_scale

    def train_step(self) -> float:
        cfg = self.config
        sim = self.simulator
        self.optimizer.zero_grad()
        total = None
        for _ in range(cfg.batch_size):
            t = int(self.rng.integers(0, self.frames.shape[0] - 1))
            u_t = self.frames[t]
            noisy = u_t + self.rng.normal(0.0, cfg.noise_std, size=u_t.shape)
            target_delta = (self.frames[t + 1] - noisy) / sim.delta_scale
            pred = sim.predict_delta(Tensor(noisy))
            loss = mse_loss(pred, target_delta)
            total = loss if total is None else total + loss
        total = total / float(cfg.batch_size)
        total.backward()
        clip_grad_norm(self.optimizer.params, cfg.grad_clip)
        self.optimizer.step()
        value = float(total.data)
        self.loss_history.append(value)
        return value

    def train(self, num_steps: int, verbose: bool = False) -> list[float]:
        for i in range(num_steps):
            loss = self.train_step()
            if verbose and (i + 1) % 50 == 0:
                print(f"step {i + 1}: loss={loss:.6f}")
        return self.loss_history
