"""MeshNet training on recorded CFD velocity fields.

The loop mechanics live in the shared :class:`repro.train.Trainer`;
this module contributes the mesh-field sampling (random frame + input
noise) and the normalized-delta loss.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..autodiff import Tensor
from ..autodiff.functional import mse_loss
from ..nn import Adam
from ..train import Trainer, TrainerOptions
from .simulator import MeshNetSimulator

__all__ = ["MeshTrainingConfig", "MeshNetTrainer", "fields_to_nodes",
           "velocity_field_rmse"]


def fields_to_nodes(fields: np.ndarray, subsample: int = 1) -> np.ndarray:
    """``(T, nx, ny, 2)`` lattice fields → ``(T, N, 2)`` node velocities
    (row-major node ordering matching :func:`mesh_from_lattice`)."""
    sub = fields[:, ::subsample, ::subsample, :]
    t = sub.shape[0]
    return sub.reshape(t, -1, 2)


def velocity_field_rmse(predicted: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-frame RMSE between node velocity fields → ``(T,)``."""
    t = min(predicted.shape[0], truth.shape[0])
    diff = predicted[:t] - truth[:t]
    return np.sqrt((diff ** 2).mean(axis=(1, 2)))


@dataclass
class MeshTrainingConfig:
    learning_rate: float = 1e-3
    #: input-velocity corruption for rollout robustness; ``None`` (default)
    #: auto-calibrates to 0.3× the per-frame velocity-change scale so the
    #: noise-correction signal never swamps the dynamics signal
    noise_std: float | None = None
    batch_size: int = 1
    grad_clip: float = 1.0
    #: micro-batches accumulated per optimizer step
    grad_accum: int = 1
    #: decay for EMA shadow weights; ``None`` disables EMA
    ema_decay: float | None = None
    seed: int = 0
    log_every: int = 50


class MeshNetTrainer(Trainer):
    """One-step supervision on consecutive velocity fields (a thin
    MeshNet adapter over the shared :class:`repro.train.Trainer`)."""

    def __init__(self, simulator: MeshNetSimulator,
                 node_velocity_frames: np.ndarray,
                 config: MeshTrainingConfig | None = None):
        if node_velocity_frames.ndim != 3:
            raise ValueError("expected (T, N, 2) node velocity frames")
        if node_velocity_frames.shape[0] < 2:
            raise ValueError("need at least two frames")
        self.simulator = simulator
        self.frames = np.asarray(node_velocity_frames, dtype=np.float64)
        self.config = config or MeshTrainingConfig()
        cfg = self.config

        # calibrate normalization scales from the data
        deltas = np.diff(self.frames, axis=0)
        simulator.velocity_scale = float(np.abs(self.frames).std()) or 1.0
        simulator.delta_scale = float(np.abs(deltas).std()) or 1.0
        if cfg.noise_std is None:
            cfg.noise_std = 0.3 * simulator.delta_scale

        super().__init__(
            simulator,
            Adam(list(simulator.parameters()), lr=cfg.learning_rate),
            options=TrainerOptions(grad_accum=cfg.grad_accum,
                                   grad_clip=cfg.grad_clip,
                                   ema_decay=cfg.ema_decay,
                                   seed=cfg.seed,
                                   log_every=cfg.log_every))

    @property
    def step_count(self) -> int:
        """Alias matching :class:`~repro.gns.GNSTrainer`."""
        return self.global_step

    # -- task protocol --------------------------------------------------
    def sample(self, rng: np.random.Generator) -> list[tuple[int, np.ndarray]]:
        """One micro-batch of (frame index, input noise) draws."""
        cfg = self.config
        batch = []
        for _ in range(cfg.batch_size):
            t = int(rng.integers(0, self.frames.shape[0] - 1))
            noise = rng.normal(0.0, cfg.noise_std,
                               size=self.frames[t].shape)
            batch.append((t, noise))
        return batch

    def loss(self, batch: list[tuple[int, np.ndarray]],
             rng: np.random.Generator) -> Tensor:
        sim = self.simulator
        total = None
        for t, noise in batch:
            noisy = self.frames[t] + noise
            # target measured against the noisy input so the model learns
            # to correct accumulated rollout error
            target_delta = (self.frames[t + 1] - noisy) / sim.delta_scale
            pred = sim.predict_delta(Tensor(noisy))
            loss = mse_loss(pred, target_delta)
            total = loss if total is None else total + loss
        return total / float(len(batch))

    def config_dict(self) -> dict:
        return dict(asdict(self.config),
                    num_frames=int(self.frames.shape[0]),
                    num_nodes=int(self.frames.shape[1]))
