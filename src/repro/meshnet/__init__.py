"""MeshGraphNet for mesh-based fluid simulation (Section 3.2)."""

from .meshgraph import (
    MeshSpec, NUM_NODE_TYPES, NodeType, build_mesh_graph, mesh_from_lattice,
)
from .simulator import MeshNetSimulator
from .training import (
    MeshNetTrainer, MeshTrainingConfig, fields_to_nodes, velocity_field_rmse,
)

__all__ = [
    "MeshSpec", "NUM_NODE_TYPES", "NodeType", "build_mesh_graph",
    "mesh_from_lattice",
    "MeshNetSimulator",
    "MeshNetTrainer", "MeshTrainingConfig", "fields_to_nodes",
    "velocity_field_rmse",
]
