"""Graph container used by GNS and MeshNet.

A :class:`Graph` is a plain data holder: node features, edge features, and
a ``(2, E)`` connectivity array of ``(senders, receivers)``. Feature arrays
may be NumPy arrays or autodiff Tensors — the network blocks accept both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Graph"]


@dataclass
class Graph:
    """Directed multigraph with dense feature matrices.

    Attributes
    ----------
    node_features:
        ``(N, F_v)`` features per node.
    edge_features:
        ``(E, F_e)`` features per edge.
    senders, receivers:
        ``(E,)`` integer endpoints; the message on edge *k* flows from
        ``senders[k]`` to ``receivers[k]``.
    globals_:
        Optional global feature vector.
    """

    node_features: Any
    edge_features: Any
    senders: np.ndarray
    receivers: np.ndarray
    globals_: Any = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.senders = np.asarray(self.senders, dtype=np.intp)
        self.receivers = np.asarray(self.receivers, dtype=np.intp)
        if self.senders.shape != self.receivers.shape:
            raise ValueError("senders and receivers must have identical shape")

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.senders.shape[0])

    def replace(self, **kwargs) -> "Graph":
        """Return a shallow copy with the given fields replaced."""
        data = dict(
            node_features=self.node_features,
            edge_features=self.edge_features,
            senders=self.senders,
            receivers=self.receivers,
            globals_=self.globals_,
            meta=self.meta,
        )
        data.update(kwargs)
        return Graph(**data)

    def validate(self) -> None:
        """Raise if connectivity indexes outside the node set."""
        n = self.num_nodes
        if self.num_edges:
            if self.senders.min() < 0 or self.senders.max() >= n:
                raise ValueError("sender index out of range")
            if self.receivers.min() < 0 or self.receivers.max() >= n:
                raise ValueError("receiver index out of range")

    def to_networkx(self):
        """Export connectivity to a networkx.DiGraph (topology only)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(zip(self.senders.tolist(), self.receivers.tolist()))
        return g
