"""Fixed-radius neighbor search.

GNS rebuilds the interaction graph every step from particle positions: an
edge connects every ordered pair within the connectivity radius. The
production path uses a uniform cell list (O(N) for bounded density); a
brute-force O(N²) reference implementation is kept for testing.

Per the HPC guides, both paths are fully vectorized — the cell-list
pair enumeration is done with array offsets, not per-particle Python loops.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["radius_graph", "radius_graph_brute", "radius_graph_kdtree",
           "radius_graph_celllist", "radius_graph_periodic"]


def radius_graph_brute(positions: np.ndarray, radius: float,
                       include_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """O(N²) reference: all ordered pairs with ``|xi - xj| <= radius``."""
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    diff = pos[:, None, :] - pos[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    mask = dist2 <= radius * radius
    if not include_self:
        np.fill_diagonal(mask, False)
    senders, receivers = np.nonzero(mask)
    return senders.astype(np.intp), receivers.astype(np.intp)


def radius_graph_kdtree(positions: np.ndarray, radius: float,
                        include_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """KD-tree neighbor pairs (scipy cKDTree); O(N log N)."""
    pos = np.asarray(positions, dtype=np.float64)
    tree = cKDTree(pos)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if pairs.size == 0:
        senders = np.empty(0, dtype=np.intp)
        receivers = np.empty(0, dtype=np.intp)
    else:
        senders = np.concatenate([pairs[:, 0], pairs[:, 1]]).astype(np.intp)
        receivers = np.concatenate([pairs[:, 1], pairs[:, 0]]).astype(np.intp)
    if include_self:
        idx = np.arange(pos.shape[0], dtype=np.intp)
        senders = np.concatenate([senders, idx])
        receivers = np.concatenate([receivers, idx])
    order = np.lexsort((senders, receivers))
    return senders[order], receivers[order]


def radius_graph_celllist(positions: np.ndarray, radius: float,
                          include_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Uniform-grid cell list in 2-D/3-D; vectorized pair enumeration.

    Bins particles into cells of side ``radius`` and tests only pairs in
    the 3^d neighboring cells, giving O(N) work at bounded density.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n, dim = pos.shape
    if n == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    lo = pos.min(axis=0)
    cell = np.floor((pos - lo) / radius).astype(np.int64)
    ncells = cell.max(axis=0) + 1
    # flatten cell coordinates to scalar keys
    strides = np.cumprod(np.concatenate(([1], ncells[:-1] + 2)))
    key = (cell * strides).sum(axis=1)
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    # start offset of each occupied cell in the sorted particle order
    uniq, start = np.unique(sorted_key, return_index=True)
    counts = np.diff(np.append(start, n))
    cell_of = {int(k): (int(s), int(c)) for k, s, c in zip(uniq, start, counts)}

    # neighbor cell offsets (including self cell)
    grids = np.meshgrid(*([np.array([-1, 0, 1])] * dim), indexing="ij")
    offsets = np.stack([g.ravel() for g in grids], axis=1)
    offset_keys = (offsets * strides).sum(axis=1)

    senders_parts: list[np.ndarray] = []
    receivers_parts: list[np.ndarray] = []
    r2 = radius * radius
    for k, (s, c) in cell_of.items():
        idx_i = order[s:s + c]
        neigh_list = []
        for ok in offset_keys:
            hit = cell_of.get(k + int(ok))
            if hit is not None:
                neigh_list.append(order[hit[0]:hit[0] + hit[1]])
        idx_j = np.concatenate(neigh_list)
        diff = pos[idx_i][:, None, :] - pos[idx_j][None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        mask = dist2 <= r2
        ii, jj = np.nonzero(mask)
        senders_parts.append(idx_j[jj])
        receivers_parts.append(idx_i[ii])

    senders = np.concatenate(senders_parts)
    receivers = np.concatenate(receivers_parts)
    if not include_self:
        keep = senders != receivers
        senders, receivers = senders[keep], receivers[keep]
    order = np.lexsort((senders, receivers))
    return senders[order].astype(np.intp), receivers[order].astype(np.intp)


def radius_graph_periodic(positions: np.ndarray, radius: float,
                          box: np.ndarray | float,
                          include_self: bool = False
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-radius pairs under periodic boundary conditions.

    ``box`` is the periodic cell size (scalar or per-dimension). The
    JAX-MD-style setting the paper's §2 references: bulk systems with no
    walls. Positions are wrapped into [0, box) first; the minimum-image
    convention applies (requires ``radius < box/2`` per dimension).
    """
    pos = np.asarray(positions, dtype=np.float64)
    box_arr = np.broadcast_to(np.asarray(box, dtype=np.float64),
                              (pos.shape[1],)).copy()
    if np.any(2.0 * radius >= box_arr):
        raise ValueError("radius must be < box/2 for minimum-image search")
    wrapped = np.mod(pos, box_arr)
    # cKDTree treats boxsize as exclusive upper bound
    wrapped[wrapped == box_arr] = 0.0
    tree = cKDTree(wrapped, boxsize=box_arr)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if pairs.size == 0:
        senders = np.empty(0, dtype=np.intp)
        receivers = np.empty(0, dtype=np.intp)
    else:
        senders = np.concatenate([pairs[:, 0], pairs[:, 1]]).astype(np.intp)
        receivers = np.concatenate([pairs[:, 1], pairs[:, 0]]).astype(np.intp)
    if include_self:
        idx = np.arange(pos.shape[0], dtype=np.intp)
        senders = np.concatenate([senders, idx])
        receivers = np.concatenate([receivers, idx])
    order = np.lexsort((senders, receivers))
    return senders[order], receivers[order]


def radius_graph(positions: np.ndarray, radius: float,
                 include_self: bool = False,
                 method: str = "kdtree") -> tuple[np.ndarray, np.ndarray]:
    """Build a fixed-radius interaction graph.

    Parameters
    ----------
    positions: ``(N, d)`` particle coordinates.
    radius: connectivity radius (inclusive).
    include_self: add self-edges ``i → i``.
    method: ``"kdtree"`` (default), ``"celllist"`` or ``"brute"``.

    Returns
    -------
    (senders, receivers): ordered pairs with ``|x_s − x_r| ≤ radius``,
    sorted by receiver then sender for deterministic downstream scatter.
    """
    impl = {
        "brute": radius_graph_brute,
        "kdtree": radius_graph_kdtree,
        "celllist": radius_graph_celllist,
    }
    if method not in impl:
        raise ValueError(f"unknown method {method!r}")
    if method == "brute":
        senders, receivers = impl[method](positions, radius, include_self)
        order = np.lexsort((senders, receivers))
        return senders[order], receivers[order]
    return impl[method](positions, radius, include_self)
