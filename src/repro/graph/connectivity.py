"""Mesh connectivity helpers for MeshNet.

MeshGraphNet operates on a simulation mesh: nodes are mesh vertices and
edges are the (bidirectional) mesh edges. For our LBM-grid fluid data we
build either a structured-grid mesh or a Delaunay triangulation of
scattered nodes.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

__all__ = ["grid_mesh_edges", "delaunay_edges", "bidirectional", "triangles_to_edges"]


def bidirectional(senders: np.ndarray, receivers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return the symmetric closure of an edge list, deduplicated."""
    s = np.concatenate([senders, receivers])
    r = np.concatenate([receivers, senders])
    pairs = np.unique(np.stack([s, r], axis=1), axis=0)
    return pairs[:, 0].astype(np.intp), pairs[:, 1].astype(np.intp)


def triangles_to_edges(triangles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Extract unique bidirectional edges from a (T, 3) triangle array."""
    tri = np.asarray(triangles)
    e = np.concatenate([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]], axis=0)
    return bidirectional(e[:, 0], e[:, 1])


def delaunay_edges(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Delaunay-triangulate scattered nodes and return mesh edges."""
    tri = Delaunay(np.asarray(points, dtype=np.float64))
    return triangles_to_edges(tri.simplices)


def grid_mesh_edges(nx: int, ny: int, diagonal: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Edges of a structured nx × ny node grid (row-major node ids).

    With ``diagonal=True`` also connects the (+1,+1) diagonal, giving a
    triangulated quad mesh.
    """
    ids = np.arange(nx * ny).reshape(nx, ny)
    pairs = [
        np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1),
        np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1),
    ]
    if diagonal:
        pairs.append(np.stack([ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()], axis=1))
    e = np.concatenate(pairs, axis=0)
    return bidirectional(e[:, 0], e[:, 1])
