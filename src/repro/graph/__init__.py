"""Graph containers, neighbor search, and mesh connectivity."""

from .graph import Graph
from .neighbors import (
    radius_graph, radius_graph_brute, radius_graph_celllist,
    radius_graph_kdtree, radius_graph_periodic,
)
from .neighborcache import NeighborListCache
from .connectivity import bidirectional, delaunay_edges, grid_mesh_edges, triangles_to_edges

__all__ = [
    "Graph",
    "radius_graph", "radius_graph_brute", "radius_graph_celllist",
    "radius_graph_kdtree", "radius_graph_periodic",
    "NeighborListCache",
    "bidirectional", "delaunay_edges", "grid_mesh_edges", "triangles_to_edges",
]
