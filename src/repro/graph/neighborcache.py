"""Verlet-skin neighbor-list caching for rollout fast paths.

Rebuilding the radius graph every rollout step is wasted work when
particles move a fraction of the connectivity radius per frame. The
classic molecular-dynamics remedy is a *Verlet list*: search once with an
inflated radius ``r + skin`` and reuse the candidate pairs until any
particle has moved more than ``skin/2`` from its position at build time.

Exactness argument (triangle inequality): let ``d_i = ‖x_i − x_i^ref‖``
be particle *i*'s displacement since the last rebuild. For any pair with
current distance ``‖x_i − x_j‖ ≤ r``,

    ‖x_i^ref − x_j^ref‖ ≤ ‖x_i − x_j‖ + d_i + d_j ≤ r + skin

whenever ``max_i d_i ≤ skin/2``. So every true edge is among the cached
candidates, and filtering candidates by the *current* distance recovers
exactly the fresh radius graph. The filter preserves the candidates'
``lexsort((senders, receivers))`` order, so the returned arrays are
bitwise identical to a fresh :func:`repro.graph.radius_graph` call.
"""

from __future__ import annotations

import numpy as np

from .neighbors import radius_graph, radius_graph_periodic

__all__ = ["NeighborListCache"]


class NeighborListCache:
    """Cached fixed-radius neighbor queries with a Verlet skin.

    Parameters
    ----------
    radius:
        True connectivity radius; returned edges satisfy
        ``‖x_s − x_r‖ ≤ radius`` exactly.
    skin:
        Extra search margin. Larger skins survive more steps between
        rebuilds but filter more candidate pairs per query. Defaults to
        ``0.25 * radius`` — a good trade for GNS-scale per-step motion.
        ``skin=0`` degenerates to a fresh build every query (any motion
        triggers a rebuild), which is the reference behaviour.
    method:
        Neighbor-search backend passed to :func:`radius_graph`
        (``"kdtree"``, ``"celllist"``, ``"brute"``).
    box:
        Periodic cell size (scalar or per-dimension) for periodic
        domains; ``None`` (default) for bounded/open domains. Requires
        ``radius + skin < min(box)/2`` (minimum-image convention); the
        skin is shrunk automatically if it would violate this.
    """

    def __init__(self, radius: float, skin: float | None = None,
                 method: str = "kdtree",
                 box: np.ndarray | float | None = None):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = float(radius)
        skin = 0.25 * self.radius if skin is None else float(skin)
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.box = None if box is None else np.atleast_1d(
            np.asarray(box, dtype=np.float64))
        if self.box is not None:
            limit = 0.5 * float(self.box.min())
            if self.radius >= limit:
                raise ValueError("radius must be < box/2 for periodic search")
            # keep the inflated search radius minimum-image-valid; walk
            # down ulps because radius + (limit - radius) can round up
            # to limit exactly
            skin = min(skin, limit - self.radius)
            while skin > 0.0 and self.radius + skin >= limit:
                skin = np.nextafter(skin, 0.0)
        self.skin = skin
        self.method = method
        # cached state
        self._ref_positions: np.ndarray | None = None
        self._candidates: tuple[np.ndarray, np.ndarray] | None = None
        # statistics
        self.builds = 0
        self.queries = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the cached candidate list."""
        if self.queries == 0:
            return 0.0
        return 1.0 - self.builds / self.queries

    def stats(self) -> dict:
        return {"queries": self.queries, "builds": self.builds,
                "hit_rate": self.hit_rate, "skin": self.skin,
                "radius": self.radius}

    def reset_stats(self) -> None:
        self.builds = 0
        self.queries = 0

    def invalidate(self) -> None:
        """Drop the cached candidate list (forces a rebuild next query)."""
        self._ref_positions = None
        self._candidates = None

    # ------------------------------------------------------------------
    def _needs_rebuild(self, pos: np.ndarray) -> bool:
        ref = self._ref_positions
        if ref is None or ref.shape != pos.shape:
            return True
        if self.skin == 0.0:
            return not np.array_equal(ref, pos)
        disp = pos - ref
        if self.box is not None:
            # minimum-image displacement: particles may have wrapped
            disp -= self.box * np.rint(disp / self.box)
        max_d2 = np.einsum("ij,ij->i", disp, disp).max()
        return max_d2 > (0.5 * self.skin) ** 2

    def _rebuild(self, pos: np.ndarray) -> None:
        search = self.radius + self.skin
        if self.box is not None:
            cand = radius_graph_periodic(pos, search, self.box)
        else:
            cand = radius_graph(pos, search, method=self.method)
        self._candidates = cand
        self._ref_positions = pos.copy()
        self.builds += 1

    def query(self, positions: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """Exact radius-graph edges at ``positions``.

        Returns ``(senders, receivers)`` sorted by receiver then sender —
        bitwise identical to a fresh :func:`radius_graph` call at the
        same positions.
        """
        pos = np.asarray(positions, dtype=np.float64)
        self.queries += 1
        if self._needs_rebuild(pos):
            self._rebuild(pos)
        cs, cr = self._candidates
        if self.skin == 0.0:
            # search radius == true radius: candidates are already exact
            return cs, cr
        rel = pos[cs] - pos[cr]
        if self.box is not None:
            rel -= self.box * np.rint(rel / self.box)
        dist2 = np.einsum("ij,ij->i", rel, rel)
        keep = dist2 <= self.radius * self.radius
        # a subset of a lexsorted list stays lexsorted, so no re-sort
        return cs[keep], cr[keep]
