"""Differentiable runout-distance measurements.

The inverse problem's loss is built on the final runout L_f — the
position of the flow front. A hard ``max`` has a one-hot (sub)gradient
that makes optimization noisy, so the differentiable path uses a
temperature-controlled softmax front: a weighted mean of particle x
concentrated on the leading particles. As τ → 0 it approaches the hard
maximum.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, as_tensor

__all__ = ["soft_front", "soft_runout", "hard_runout"]


def soft_front(positions: Tensor, temperature: float = 0.02, axis: int = 0) -> Tensor:
    """Soft maximum of the ``axis`` coordinate over particles.

    ``Σ_i softmax(x_i/τ) x_i`` — smooth, differentiable, and within τ·ln(n)
    of the true front.
    """
    positions = as_tensor(positions)
    x = positions[:, axis]
    shifted = (x - Tensor(np.max(x.data))) * (1.0 / temperature)
    w = shifted.exp()
    return (w * x).sum() / w.sum()


def soft_runout(positions: Tensor, toe_x: float,
                temperature: float = 0.02) -> Tensor:
    """Differentiable runout: soft front minus the initial toe position."""
    return soft_front(positions, temperature) - toe_x


def hard_runout(positions: np.ndarray, toe_x: float,
                quantile: float = 0.995) -> float:
    """Non-differentiable evaluation metric (matches ``mpm.runout_distance``)."""
    pos = positions.data if isinstance(positions, Tensor) else np.asarray(positions)
    front = float(np.quantile(pos[:, 0], quantile))
    return max(front - toe_x, 0.0)
