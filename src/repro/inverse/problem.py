"""The paper's inverse problem (Section 5): identify the friction angle φ
whose k-step GNS rollout reproduces a target runout distance.

Loss:  J(φ) = (L_f^{φ_target} − L_f^{φ})²

∂J/∂φ is computed by reverse-mode AD through the *entire* rollout — the
capability classical forward simulators lack. Following the paper, the
differentiable forward pass is truncated to k steps (k = 30 in the paper,
for memory reasons) and the target runout is defined at step k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, no_grad
from ..gns.simulator import LearnedSimulator
from .optimizers import FiniteDifferenceInverter, GradientDescentInverter, InversionRecord
from .runout import hard_runout, soft_runout

__all__ = ["RunoutInverseProblem"]


@dataclass
class RunoutInverseProblem:
    """Friction-angle identification from a target runout.

    Parameters
    ----------
    simulator:
        A :class:`LearnedSimulator` trained **with the material feature**
        (``FeatureConfig.use_material=True``).
    initial_history:
        ``(C+1, n, d)`` seed frames (e.g. MPM warm-up of the column).
    target_runout:
        L_f^{φ_target} at step ``rollout_steps`` (use
        :meth:`target_from_angle` to generate it with the same simulator).
    toe_x:
        Initial toe position the runout is measured from.
    rollout_steps:
        k — differentiable forward-pass length (paper: 30).
    """

    simulator: LearnedSimulator
    initial_history: np.ndarray
    target_runout: float
    toe_x: float
    rollout_steps: int = 30
    temperature: float = 0.02

    def __post_init__(self):
        if not self.simulator.feature_config.use_material:
            raise ValueError("inverse problem needs a material-conditioned GNS "
                             "(FeatureConfig.use_material=True)")

    # ------------------------------------------------------------------
    def simulated_runout(self, phi: Tensor) -> Tensor:
        """Differentiable L_f^{φ}: rollout k steps, soft front of the last frame."""
        history = [Tensor(f) for f in self.initial_history]
        frames = self.simulator.rollout_differentiable(
            history, self.rollout_steps, material=phi)
        return soft_runout(frames[-1], self.toe_x, self.temperature)

    def loss(self, phi: Tensor) -> Tensor:
        """J(φ) = (L_target − L_f^{φ})²."""
        diff = self.simulated_runout(phi) - self.target_runout
        return diff * diff

    # ------------------------------------------------------------------
    def solve(self, phi0: float, lr: float | str = "auto",
              max_iterations: int = 20,
              bounds: tuple[float, float] = (5.0, 60.0),
              initial_step: float = 3.0,
              callback=None) -> InversionRecord:
        """Gradient-descent inversion via AD (the paper's method).

        ``lr="auto"`` self-calibrates the step so the first update moves φ
        by ``initial_step`` degrees (J is in m², so raw gradients are tiny).
        """
        inverter = GradientDescentInverter(self.loss, lr=lr, bounds=bounds,
                                           loss_tol=1e-12,
                                           auto_initial_step=initial_step)
        return inverter.solve(phi0, max_iterations=max_iterations,
                              callback=callback)

    def solve_finite_difference(self, phi0: float, lr: float = 500.0,
                                max_iterations: int = 20, eps: float = 0.5,
                                bounds: tuple[float, float] = (5.0, 60.0)
                                ) -> InversionRecord:
        """Baseline inversion with central differences (2 rollouts/gradient)."""

        def objective(phi: float) -> float:
            with no_grad():
                val = self.loss(Tensor(np.array(phi)))
            return float(val.data)

        inverter = FiniteDifferenceInverter(objective, lr=lr, eps=eps,
                                            bounds=bounds, loss_tol=1e-8)
        return inverter.solve(phi0, max_iterations=max_iterations)

    # ------------------------------------------------------------------
    def target_from_angle(self, phi_target: float) -> float:
        """Generate the target runout by rolling out the simulator at
        φ_target (the paper's Fig 5a target profile).

        Uses the same soft-front measurement as :meth:`simulated_runout`,
        so J(φ_target) = 0 exactly — the inverse problem is well-posed by
        construction. (May be negative early in a collapse, when the flow
        front has not yet passed the toe.)
        """
        with no_grad():
            frames = self.simulator.rollout(self.initial_history,
                                            self.rollout_steps,
                                            material=phi_target)
            return float(soft_runout(Tensor(frames[-1]), self.toe_x,
                                     self.temperature).data)

    def evaluate(self, phi: float) -> dict:
        """Non-differentiable diagnostics at φ."""
        with no_grad():
            frames = self.simulator.rollout(self.initial_history,
                                            self.rollout_steps, material=phi)
        soft = float(self.simulated_runout(Tensor(np.array(phi))).data)
        return {
            "phi": phi,
            "hard_runout": hard_runout(frames[-1], self.toe_x, quantile=1.0),
            "soft_runout": soft,
            "target_runout": self.target_runout,
        }
