"""Inverse problems via differentiable GNS rollouts (Section 5)."""

from .runout import hard_runout, soft_front, soft_runout
from .optimizers import (
    FiniteDifferenceInverter, GradientDescentInverter, InversionRecord,
    finite_difference_gradient,
)
from .vector import AdamInverter, VectorInversionRecord
from .problem import RunoutInverseProblem

__all__ = [
    "hard_runout", "soft_front", "soft_runout",
    "FiniteDifferenceInverter", "GradientDescentInverter", "InversionRecord",
    "finite_difference_gradient",
    "RunoutInverseProblem",
    "AdamInverter", "VectorInversionRecord",
]
