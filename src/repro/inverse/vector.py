"""Multi-parameter inversion (the natural extension of the paper's
single-parameter friction-angle identification).

Adam on a parameter *vector* whose gradient comes from one reverse pass
through the differentiable simulator — the cost advantage over finite
differences grows linearly with the number of parameters (FD needs 2p
rollouts per step; AD needs one forward + one backward regardless of p).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autodiff import Tensor

__all__ = ["VectorInversionRecord", "AdamInverter"]


@dataclass
class VectorInversionRecord:
    """Trace of a multi-parameter inversion."""

    parameters: list[np.ndarray] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    gradients: list[np.ndarray] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0

    @property
    def final_parameters(self) -> np.ndarray:
        return self.parameters[-1]


class AdamInverter:
    """Adam over a parameter vector with AD gradients.

    Parameters
    ----------
    objective:
        Maps a ``(p,)`` Tensor (requires_grad) to a scalar loss Tensor.
    lr:
        Adam step size, in the parameters' own units. Parameters of very
        different scales should be normalized by ``scales`` (the optimizer
        then works in units of `scales`).
    bounds:
        Optional ``(p, 2)`` box; parameters are projected after each step.
    """

    def __init__(self, objective: Callable[[Tensor], Tensor], lr: float = 0.1,
                 scales: np.ndarray | None = None,
                 bounds: np.ndarray | None = None,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, loss_tol: float = 1e-12):
        self.objective = objective
        self.lr = lr
        self.scales = None if scales is None else np.asarray(scales, float)
        self.bounds = None if bounds is None else np.asarray(bounds, float)
        self.b1, self.b2 = betas
        self.eps = eps
        self.loss_tol = loss_tol

    def solve(self, x0: np.ndarray, max_iterations: int = 50,
              callback: Callable[[int, np.ndarray, float], None] | None = None
              ) -> VectorInversionRecord:
        x = np.asarray(x0, dtype=np.float64).copy()
        scales = self.scales if self.scales is not None else np.ones_like(x)
        m = np.zeros_like(x)
        v = np.zeros_like(x)
        record = VectorInversionRecord()

        for it in range(max_iterations):
            param = Tensor(x.copy(), requires_grad=True)
            loss = self.objective(param)
            loss.backward()
            g = param.grad * scales        # gradient in normalized units

            record.parameters.append(x.copy())
            record.losses.append(float(loss.data))
            record.gradients.append(np.asarray(param.grad).copy())
            if callback is not None:
                callback(it, x.copy(), float(loss.data))
            if float(loss.data) < self.loss_tol:
                record.converged = True
                record.iterations = it + 1
                return record

            m = self.b1 * m + (1 - self.b1) * g
            v = self.b2 * v + (1 - self.b2) * g * g
            mh = m / (1 - self.b1 ** (it + 1))
            vh = v / (1 - self.b2 ** (it + 1))
            x = x - self.lr * scales * mh / (np.sqrt(vh) + self.eps)
            if self.bounds is not None:
                x = np.clip(x, self.bounds[:, 0], self.bounds[:, 1])

        record.iterations = max_iterations
        record.parameters.append(x.copy())
        final = self.objective(Tensor(x.copy()))
        record.losses.append(float(final.data))
        record.gradients.append(np.full_like(x, np.nan))
        return record
