"""Scalar-parameter optimizers for inverse problems.

The paper uses plain gradient descent on the friction angle with the
gradient obtained by reverse-mode AD through the GNS rollout; a central
finite-difference baseline is provided for comparison (it costs two full
rollouts per gradient instead of one forward + one backward pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autodiff import Tensor
from ..obs import get_registry, span

__all__ = ["InversionRecord", "GradientDescentInverter", "finite_difference_gradient"]


def _record_iteration(method: str, it: int, x: float, loss: float,
                      grad: float) -> None:
    """Push one inversion iterate into the global metrics registry
    (no-op unless telemetry is enabled)."""
    reg = get_registry()
    if not reg.enabled:
        return
    reg.counter("inverse.iterations", method=method).inc()
    reg.series("inverse.loss", method=method).append(it, loss)
    reg.series("inverse.parameter", method=method).append(it, x)
    reg.series("inverse.gradient", method=method).append(it, grad)


@dataclass
class InversionRecord:
    """Trace of one inversion run."""

    parameters: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    gradients: list[float] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0

    @property
    def final_parameter(self) -> float:
        return self.parameters[-1]


def finite_difference_gradient(objective: Callable[[float], float],
                               x: float, eps: float = 1e-3) -> float:
    """Central-difference ∂objective/∂x — the trial-and-error baseline."""
    return (objective(x + eps) - objective(x - eps)) / (2.0 * eps)


class GradientDescentInverter:
    """Gradient descent on a scalar parameter.

    Parameters
    ----------
    objective:
        Maps a scalar Tensor (requires_grad) to a scalar loss Tensor.
        The AD tape supplies ∂J/∂x.
    lr: step size.
    bounds: optional (lo, hi) box projection after each step.
    grad_tol / loss_tol: convergence thresholds.
    """

    def __init__(self, objective: Callable[[Tensor], Tensor],
                 lr: float | str = 1.0,
                 bounds: tuple[float, float] | None = None,
                 grad_tol: float = 0.0, loss_tol: float = 1e-10,
                 max_grad: float | None = None,
                 auto_initial_step: float = 1.0):
        self.objective = objective
        self.lr = lr
        self.bounds = bounds
        self.grad_tol = grad_tol
        self.loss_tol = loss_tol
        self.max_grad = max_grad
        #: with ``lr="auto"``, the first update moves the parameter by
        #: exactly this much (the step size self-calibrates to the
        #: objective's scale — useful when J is in squared physical units)
        self.auto_initial_step = auto_initial_step

    def solve(self, x0: float, max_iterations: int = 20,
              callback: Callable[[int, float, float, float], None] | None = None
              ) -> InversionRecord:
        """Iterate from ``x0``; returns the full trace."""
        record = InversionRecord()
        x = float(x0)
        lr = self.lr
        for it in range(max_iterations):
            with span("inverse/iteration"):
                param = Tensor(np.array(x), requires_grad=True)
                with span("forward"):
                    loss = self.objective(param)
                with span("backward"):
                    loss.backward()
                g = float(param.grad)
            if self.max_grad is not None:
                g = float(np.clip(g, -self.max_grad, self.max_grad))
            record.parameters.append(x)
            record.losses.append(float(loss.data))
            record.gradients.append(g)
            _record_iteration("gradient", it, x, float(loss.data), g)
            if callback is not None:
                callback(it, x, float(loss.data), g)
            if float(loss.data) < self.loss_tol or (
                    self.grad_tol > 0.0 and abs(g) < self.grad_tol):
                record.converged = True
                record.iterations = it + 1
                return record
            if lr == "auto":
                lr = self.auto_initial_step / (abs(g) + 1e-30)
            x = x - lr * g
            if self.bounds is not None:
                x = float(np.clip(x, *self.bounds))
        record.iterations = max_iterations
        # record the final parameter reached
        record.parameters.append(x)
        final = self.objective(Tensor(np.array(x)))
        record.losses.append(float(final.data))
        record.gradients.append(float("nan"))
        return record


class FiniteDifferenceInverter:
    """Same loop with central-difference gradients (baseline, 2 rollouts/iter)."""

    def __init__(self, objective: Callable[[float], float], lr: float = 1.0,
                 eps: float = 1e-3, bounds: tuple[float, float] | None = None,
                 grad_tol: float = 0.0, loss_tol: float = 1e-10):
        self.objective = objective
        self.lr = lr
        self.eps = eps
        self.bounds = bounds
        self.grad_tol = grad_tol
        self.loss_tol = loss_tol

    def solve(self, x0: float, max_iterations: int = 20) -> InversionRecord:
        record = InversionRecord()
        x = float(x0)
        for it in range(max_iterations):
            with span("inverse/iteration"):
                loss = self.objective(x)
                g = finite_difference_gradient(self.objective, x, self.eps)
            record.parameters.append(x)
            record.losses.append(loss)
            record.gradients.append(g)
            _record_iteration("fd", it, x, loss, g)
            if loss < self.loss_tol or (self.grad_tol > 0.0
                                        and abs(g) < self.grad_tol):
                record.converged = True
                record.iterations = it + 1
                return record
            x = x - self.lr * g
            if self.bounds is not None:
                x = float(np.clip(x, *self.bounds))
        record.iterations = max_iterations
        record.parameters.append(x)
        record.losses.append(self.objective(x))
        record.gradients.append(float("nan"))
        return record
