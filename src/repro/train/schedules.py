"""Learning-rate schedules behind one :class:`Schedule` interface.

A schedule is a (mostly pure) function ``step -> lr`` plus an ``apply``
that rebinds ``optimizer.lr`` — the shared :class:`~repro.train.Trainer`
calls ``apply(optimizer, global_step)`` right before each optimizer step,
so a restored checkpoint resumes on the exact same LR curve. Stateful
schedules (:class:`ReduceOnPlateau`) expose ``state_dict`` /
``load_state_dict`` and are captured in the
:class:`~repro.train.TrainState` manifest.
"""

from __future__ import annotations

import math

from ..nn.optim import ExponentialDecay as _ExponentialDecay, Optimizer

__all__ = [
    "Schedule", "ConstantSchedule", "ExponentialDecay", "CosineDecay",
    "StepDecay", "ReduceOnPlateau", "WarmupSchedule", "build_schedule",
    "SCHEDULE_NAMES",
]


class Schedule:
    """Interface: ``lr = schedule(step)``; ``apply`` pushes it in place."""

    def __call__(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, step: int) -> float:
        lr = self(step)
        optimizer.lr = lr
        return lr

    # stateless by default; stateful subclasses override both
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class ConstantSchedule(Schedule):
    """Fixed learning rate (the implicit schedule of the old trainers)."""

    def __init__(self, lr: float):
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class ExponentialDecay(_ExponentialDecay, Schedule):
    """GNS schedule ``final + (init − final)·decay^(t/steps)`` (paper
    default: 1e-4 → 1e-6 over millions of steps), now a :class:`Schedule`.

    Inherits the formula from :class:`repro.nn.optim.ExponentialDecay`,
    which remains as a deprecated alias for existing callers.
    """


class CosineDecay(Schedule):
    """Cosine annealing from ``init_lr`` to ``final_lr`` over
    ``decay_steps``; constant at ``final_lr`` afterwards."""

    def __init__(self, init_lr: float, final_lr: float = 0.0,
                 decay_steps: int = 100_000):
        if decay_steps < 1:
            raise ValueError("decay_steps must be >= 1")
        self.init_lr = float(init_lr)
        self.final_lr = float(final_lr)
        self.decay_steps = int(decay_steps)

    def __call__(self, step: int) -> float:
        frac = min(max(step, 0) / self.decay_steps, 1.0)
        cos = 0.5 * (1.0 + math.cos(math.pi * frac))
        return self.final_lr + (self.init_lr - self.final_lr) * cos


class StepDecay(Schedule):
    """Piecewise-constant decay: ``init_lr · gamma^(step // step_size)``,
    floored at ``min_lr``."""

    def __init__(self, init_lr: float, step_size: int, gamma: float = 0.1,
                 min_lr: float = 0.0):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.init_lr = float(init_lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.min_lr = float(min_lr)

    def __call__(self, step: int) -> float:
        return max(self.init_lr * self.gamma ** (step // self.step_size),
                   self.min_lr)


class ReduceOnPlateau(Schedule):
    """Stateful step-plateau schedule: multiply the LR by ``factor`` when
    a monitored metric hasn't improved for ``patience`` reports.

    Feed it metrics with :meth:`report` (the validation callback does this
    automatically when the trainer's schedule is a ``ReduceOnPlateau``).
    """

    def __init__(self, init_lr: float, factor: float = 0.5,
                 patience: int = 3, min_lr: float = 0.0,
                 min_delta: float = 0.0):
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.init_lr = float(init_lr)
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_lr = float(min_lr)
        self.min_delta = float(min_delta)
        self.lr = float(init_lr)
        self.best = math.inf
        self.stale = 0

    def report(self, metric: float) -> None:
        """Record a validation metric (lower is better)."""
        if metric < self.best - self.min_delta:
            self.best = float(metric)
            self.stale = 0
            return
        self.stale += 1
        if self.stale >= self.patience:
            self.lr = max(self.lr * self.factor, self.min_lr)
            self.stale = 0

    def __call__(self, step: int) -> float:
        return self.lr

    def state_dict(self) -> dict:
        return {"lr": self.lr, "best": self.best, "stale": self.stale}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.best = float(state["best"])
        self.stale = int(state["stale"])


class WarmupSchedule(Schedule):
    """Linear warmup from ``warmup_init`` fraction to the base schedule's
    value over ``warmup_steps``, then the base schedule verbatim."""

    def __init__(self, base: Schedule, warmup_steps: int,
                 warmup_init: float = 0.0):
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        self.base = base
        self.warmup_steps = int(warmup_steps)
        self.warmup_init = float(warmup_init)

    def __call__(self, step: int) -> float:
        lr = self.base(step)
        if step >= self.warmup_steps:
            return lr
        frac = step / self.warmup_steps
        return lr * (self.warmup_init + (1.0 - self.warmup_init) * frac)

    def state_dict(self) -> dict:
        return self.base.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.base.load_state_dict(state)


SCHEDULE_NAMES = ("constant", "exponential", "cosine", "step", "plateau")


def build_schedule(name: str, init_lr: float, final_lr: float = 0.0,
                   decay_steps: int = 100_000,
                   warmup_steps: int = 0) -> Schedule:
    """Factory behind the CLI's ``--schedule NAME`` / ``--warmup N``."""
    if name == "constant":
        sched: Schedule = ConstantSchedule(init_lr)
    elif name == "exponential":
        sched = ExponentialDecay(init_lr, final_lr, decay_steps=decay_steps)
    elif name == "cosine":
        sched = CosineDecay(init_lr, final_lr, decay_steps=decay_steps)
    elif name == "step":
        sched = StepDecay(init_lr, step_size=max(decay_steps // 4, 1),
                          min_lr=final_lr)
    elif name == "plateau":
        sched = ReduceOnPlateau(init_lr, min_lr=final_lr)
    else:
        raise ValueError(f"unknown schedule '{name}' "
                         f"(choose from {', '.join(SCHEDULE_NAMES)})")
    if warmup_steps > 0:
        sched = WarmupSchedule(sched, warmup_steps)
    return sched
