"""repro.train — the unified training stack.

One battle-tested loop shared by every learned simulator in the repo
(GNS particulate, MeshGraphNet fluid, interpretable n-body):

* :class:`Trainer` / :class:`TrainTask` / :class:`TrainerOptions` — the
  generic ``zero_grad → accumulate → clip → step → schedule → EMA``
  loop, parameterized by small task adapters.
* :class:`TrainState` — complete versioned checkpoints (weights,
  optimizer moments, RNG state, EMA shadow, schedule state, config
  hash) in one ``.npz`` + JSON manifest; resuming is bitwise exact.
* :mod:`~repro.train.schedules` — ``ExponentialDecay``, ``CosineDecay``,
  ``StepDecay``, ``ReduceOnPlateau``, ``WarmupSchedule`` behind one
  :class:`Schedule` interface.
* :mod:`~repro.train.callbacks` — checkpoint-every-K, validation with
  EMA/early-stop/best-weights, metric logging (promoted from
  ``repro.gns.callbacks``).

See ``docs/training.md`` for the architecture and a resume walkthrough.
"""

from .callbacks import (
    Callback, CheckpointCallback, CheckpointManager, EarlyStopping,
    ExponentialMovingAverage, MetricLogger, ValidationCallback,
)
from .schedules import (
    SCHEDULE_NAMES, ConstantSchedule, CosineDecay, ExponentialDecay,
    ReduceOnPlateau, Schedule, StepDecay, WarmupSchedule, build_schedule,
)
from .state import (
    TRAIN_STATE_VERSION, TrainState, config_fingerprint, latest_checkpoint,
    prune_tmp_files, verify_checkpoint,
)
from .trainer import Trainer, TrainerOptions, TrainTask

__all__ = [
    "Trainer", "TrainerOptions", "TrainTask",
    "TrainState", "TRAIN_STATE_VERSION", "config_fingerprint",
    "latest_checkpoint", "verify_checkpoint", "prune_tmp_files",
    "Schedule", "ConstantSchedule", "ExponentialDecay", "CosineDecay",
    "StepDecay", "ReduceOnPlateau", "WarmupSchedule", "build_schedule",
    "SCHEDULE_NAMES",
    "Callback", "CheckpointCallback", "ValidationCallback",
    "CheckpointManager", "EarlyStopping", "ExponentialMovingAverage",
    "MetricLogger",
]
