"""The shared training loop behind GNS, MeshNet, and interpret.

One battle-tested :class:`Trainer` drives every learned model in the
repo: ``zero_grad → accumulate N micro-batch losses → clip → step →
schedule → EMA update``, with unified ``train/*`` telemetry, a callback
protocol, and full checkpoint/resume through :class:`TrainState`.

Model families plug in through the :class:`TrainTask` protocol — two
methods, ``sample(rng)`` (draw one micro-batch) and ``loss(batch, rng)``
(scalar loss Tensor) — so GNS windowed-noise batches, MeshNet field
batches, and interpret spring samples are just adapters. All randomness
must flow through the passed-in ``rng`` (the trainer's own generator):
that is what makes a restored checkpoint continue the *exact* sample and
noise sequence of the uninterrupted run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..autodiff import Tensor
from ..nn import Module, Optimizer, clip_grad_norm
from ..obs import get_registry, span
from ..resilience.faults import get_injector
from .callbacks import Callback, ExponentialMovingAverage
from .schedules import Schedule
from .state import TrainState, config_fingerprint, latest_checkpoint, \
    rng_from_json, rng_state_to_json

__all__ = ["TrainerOptions", "TrainTask", "Trainer"]


@dataclass
class TrainerOptions:
    """Knobs of the generic loop (task-specific configs live with the
    task adapters, e.g. ``gns.TrainingConfig``)."""

    #: micro-batches accumulated per optimizer step; gradients simply add
    #: across ``backward()`` calls, each loss is pre-divided by this
    grad_accum: int = 1
    #: global L2 gradient-norm ceiling; ``None`` disables clipping
    grad_clip: float | None = 1.0
    #: EMA decay for shadow weights; ``None`` disables EMA
    ema_decay: float | None = None
    seed: int = 0
    log_every: int = 100

    def __post_init__(self):
        if self.grad_accum < 1:
            raise ValueError("grad_accum must be >= 1")


class TrainTask:
    """Protocol for model-family adapters (see module docstring).

    ``state_dict``/``load_state_dict`` are optional JSON-serializable
    hooks for tasks with their own sampling state (e.g. the interpret
    task's epoch ordering); stateless tasks keep the defaults.
    """

    def sample(self, rng: np.random.Generator):  # pragma: no cover
        raise NotImplementedError

    def loss(self, batch, rng: np.random.Generator) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def config_dict(self) -> dict:
        """Task configuration folded into the checkpoint fingerprint."""
        return {}

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class Trainer:
    """Generic minibatch trainer with full checkpoint/resume.

    Subclasses may either pass a :class:`TrainTask` or implement
    ``sample``/``loss`` themselves (the trainer then acts as its own
    task) — ``GNSTrainer`` and ``MeshNetTrainer`` do the latter so their
    long-standing helper methods stay in place.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 task: TrainTask | None = None,
                 schedule: Schedule | None = None,
                 options: TrainerOptions | None = None):
        self.model = model
        self.optimizer = optimizer
        self.task = task if task is not None else self
        self.schedule = schedule
        self.options = options or TrainerOptions()
        self.rng = np.random.default_rng(self.options.seed)
        self.ema = (ExponentialMovingAverage(model, self.options.ema_decay)
                    if self.options.ema_decay is not None else None)
        self.global_step = 0
        self.micro_step = 0
        self.loss_history: list[float] = []

    # -- task protocol (overridable by subclasses) ----------------------
    def sample(self, rng: np.random.Generator):  # pragma: no cover
        raise NotImplementedError("pass a task or override sample()")

    def loss(self, batch, rng: np.random.Generator) -> Tensor:  # pragma: no cover
        raise NotImplementedError("pass a task or override loss()")

    def config_dict(self) -> dict:
        return {}

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass

    # -- the loop -------------------------------------------------------
    def train_step(self) -> float:
        """One optimizer update (over ``grad_accum`` micro-batches);
        returns the accumulated loss value."""
        opts = self.options
        task = self.task
        inj = get_injector()
        self.optimizer.zero_grad()
        value = 0.0
        for micro in range(opts.grad_accum):
            self.micro_step = micro
            with span("train/forward"):
                batch = task.sample(self.rng)
                loss = task.loss(batch, self.rng)
                if inj.armed and inj.fire("train.poison_batch"):
                    # chaos site: a poisoned shard yields a non-finite loss
                    loss = loss * float("nan")
                if opts.grad_accum > 1:
                    loss = loss / float(opts.grad_accum)
            with span("train/backward"):
                loss.backward()
            value += float(loss.data)
        self.micro_step = 0
        if inj.armed and inj.fire("train.nan_grad"):
            # chaos site: gradients come back NaN (clip_grad_norm's
            # non-finite guard must drop them, skipping the update)
            for p in self.optimizer.params:
                if p.grad is not None:
                    p.grad = np.full_like(p.grad, np.nan)
        with span("train/optimizer"):
            grad_norm = (clip_grad_norm(self.optimizer.params, opts.grad_clip)
                         if opts.grad_clip is not None else None)
            if self.schedule is not None:
                self.schedule.apply(self.optimizer, self.global_step)
            self.optimizer.step()
            if self.ema is not None:
                self.ema.update()
        self.global_step += 1
        self.loss_history.append(value)
        reg = get_registry()
        if reg.enabled:
            reg.counter("train.steps").inc()
            reg.series("train.loss").append(self.global_step, value)
            reg.gauge("train.learning_rate").set(self.optimizer.lr)
            if grad_norm is not None:
                reg.series("train.grad_norm").append(self.global_step,
                                                     grad_norm)
            if not np.isfinite(value):
                reg.counter("train.nonfinite_loss").inc()
        return value

    def fit(self, num_steps: int, callbacks: list[Callback] = (),
            verbose: bool = False) -> list[float]:
        """Run up to ``num_steps`` updates with callbacks; returns the
        loss trace. A callback returning True from ``on_step_end`` stops
        training early."""
        callbacks = list(callbacks)
        for cb in callbacks:
            cb.on_train_begin(self)
        try:
            for _ in range(num_steps):
                loss = self.train_step()
                if verbose and self.global_step % self.options.log_every == 0:
                    print(f"step {self.global_step}: loss={loss:.6f}")
                stop = False
                for cb in callbacks:
                    if cb.on_step_end(self, self.global_step, loss):
                        stop = True
                if stop:
                    break
        finally:
            for cb in callbacks:
                cb.on_train_end(self)
        return self.loss_history

    def train(self, num_steps: int, verbose: bool = False) -> list[float]:
        """Run ``num_steps`` updates; returns the loss trace."""
        return self.fit(num_steps, verbose=verbose)

    # -- checkpoint / resume --------------------------------------------
    def _fingerprint(self) -> str:
        params = [(name, list(p.data.shape), str(p.data.dtype))
                  for name, p in self.model.named_parameters()]
        task_cfg = (self.task.config_dict() if self.task is not self
                    else self.config_dict())
        return config_fingerprint(
            {"trainer": type(self).__name__,
             "task": type(self.task).__name__,
             "optimizer": type(self.optimizer).__name__},
            asdict(self.options), task_cfg, {"params": params})

    def state(self) -> TrainState:
        """Snapshot everything needed for a bitwise-identical resume."""
        opt_state = self.optimizer.state_dict()
        opt_state["class"] = type(self.optimizer).__name__
        task_state = (self.task.state_dict() if self.task is not self
                      else self.state_dict())
        return TrainState(
            model_state=self.model.state_dict(),
            optimizer_state=opt_state,
            rng_state=rng_state_to_json(self.rng),
            global_step=self.global_step,
            micro_step=self.micro_step,
            ema_state=self.ema.state_dict() if self.ema is not None else None,
            schedule_state=(self.schedule.state_dict()
                            if self.schedule is not None else {}),
            task_state=task_state,
            config_hash=self._fingerprint(),
            meta={"loss_last": self.loss_history[-1]
                  if self.loss_history else None},
        )

    def save(self, path: str | Path) -> Path:
        return self.state().save(path)

    def restore(self, source: str | Path | TrainState,
                strict: bool = True) -> "Trainer":
        """Restore from a checkpoint file, directory, or TrainState.

        With ``strict`` (default) the stored config hash must match this
        trainer's — resuming under a different architecture or
        hyperparameters raises instead of silently drifting.
        """
        if isinstance(source, TrainState):
            state = source
        else:
            path = Path(source)
            if path.is_dir():
                found = latest_checkpoint(path)
                if found is None:
                    raise FileNotFoundError(
                        f"no TrainState checkpoint found in {path}")
                path = found
            state = TrainState.load(path)
        if strict and state.config_hash and \
                state.config_hash != self._fingerprint():
            raise ValueError(
                "checkpoint config hash mismatch — the run being resumed "
                "was configured differently (pass strict=False to force)")
        self.model.load_state_dict(state.model_state)
        opt_cls = type(self.optimizer).__name__
        if state.optimizer_state.get("class") not in ("", opt_cls):
            raise ValueError(
                f"checkpoint optimizer {state.optimizer_state['class']!r} "
                f"!= current {opt_cls!r}")
        self.optimizer.load_state_dict(state.optimizer_state)
        self.rng = rng_from_json(state.rng_state)
        self.global_step = state.global_step
        self.micro_step = state.micro_step
        if state.ema_state is not None:
            if self.ema is None:
                self.ema = ExponentialMovingAverage(
                    self.model, self.options.ema_decay or 0.999)
            self.ema.load_state_dict(state.ema_state)
        if self.schedule is not None and state.schedule_state:
            self.schedule.load_state_dict(state.schedule_state)
        if state.task_state:
            if self.task is not self:
                self.task.load_state_dict(state.task_state)
            else:
                self.load_state_dict(state.task_state)
        return self
