"""Complete, versioned training checkpoints.

A :class:`TrainState` captures *everything* an interrupted run needs to
continue bit-for-bit: model weights, optimizer moments and step counter,
the global/micro step, the RNG bit-generator state, EMA shadow weights,
any stateful schedule, and a hash of the configuration that produced it.
It serializes to a single ``.npz`` (arrays) plus a JSON manifest
(scalars), written through :func:`repro.data.save_state_npz`, so a
checkpoint is one portable file with a human-readable sidecar.

The acceptance bar this format exists for: kill a run at step *k*,
``Trainer.restore`` the checkpoint, train to step *n*, and the
parameters are **bitwise identical** to an uninterrupted run of *n*
steps (see ``tests/test_train_resume.py``).
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.io import load_state_npz, save_state_npz, verify_state_npz

__all__ = ["TRAIN_STATE_VERSION", "TrainState", "config_fingerprint",
           "rng_state_to_json", "rng_from_json", "latest_checkpoint",
           "verify_checkpoint", "prune_tmp_files"]

TRAIN_STATE_VERSION = 1


def config_fingerprint(*configs: dict) -> str:
    """Stable sha256 over JSON-canonicalized config dicts.

    Stored in every checkpoint and checked on restore, so resuming with a
    silently different architecture or hyperparameters fails loudly
    instead of producing a subtly wrong run.
    """
    blob = json.dumps(list(configs), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def rng_state_to_json(rng: np.random.Generator) -> dict:
    """The bit generator's full state as a JSON-safe dict (Python ints
    carry the 128-bit PCG64 state exactly)."""
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=int))


def rng_from_json(state: dict) -> np.random.Generator:
    """Rebuild a Generator whose next draw matches the captured one."""
    name = state.get("bit_generator", "PCG64")
    bitgen_cls = getattr(np.random, name, None)
    if bitgen_cls is None:
        raise ValueError(f"unknown bit generator '{name}'")
    bitgen = bitgen_cls()
    bitgen.state = state
    return np.random.Generator(bitgen)


@dataclass
class TrainState:
    """One complete training checkpoint (see module docstring)."""

    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    rng_state: dict
    global_step: int = 0
    #: grad-accumulation phase; checkpoints taken by callbacks always sit
    #: on a step boundary (phase 0) but the field round-trips regardless
    micro_step: int = 0
    ema_state: dict[str, np.ndarray] | None = None
    schedule_state: dict = field(default_factory=dict)
    task_state: dict = field(default_factory=dict)
    config_hash: str = ""
    meta: dict = field(default_factory=dict)
    version: int = TRAIN_STATE_VERSION

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write ``path`` (.npz) plus the ``path.json`` manifest sidecar."""
        arrays: dict[str, np.ndarray] = {}
        for name, arr in self.model_state.items():
            arrays[f"model::{name}"] = arr
        for slot, slot_arrays in self.optimizer_state.get("slots", {}).items():
            for i, arr in enumerate(slot_arrays):
                arrays[f"opt::{slot}::{i}"] = arr
        if self.ema_state is not None:
            for name, arr in self.ema_state.items():
                arrays[f"ema::{name}"] = arr
        manifest = {
            "format": "repro.train.TrainState",
            "version": self.version,
            "global_step": self.global_step,
            "micro_step": self.micro_step,
            "optimizer": {
                "class": self.optimizer_state.get("class", ""),
                "hyper": self.optimizer_state.get("hyper", {}),
                "slots": sorted(self.optimizer_state.get("slots", {})),
            },
            "rng_state": self.rng_state,
            "schedule_state": self.schedule_state,
            "task_state": self.task_state,
            "config_hash": self.config_hash,
            "has_ema": self.ema_state is not None,
            "meta": self.meta,
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_state_npz(path, arrays, manifest)
        return path

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "TrainState":
        arrays, manifest = load_state_npz(path)
        if manifest.get("format") != "repro.train.TrainState":
            raise ValueError(f"{path} is not a TrainState checkpoint")
        version = int(manifest["version"])
        if version > TRAIN_STATE_VERSION:
            raise ValueError(
                f"checkpoint version {version} is newer than supported "
                f"({TRAIN_STATE_VERSION}) — upgrade the code, not the file")
        model_state: dict[str, np.ndarray] = {}
        ema_state: dict[str, np.ndarray] = {}
        slots: dict[str, dict[int, np.ndarray]] = {}
        for key, arr in arrays.items():
            kind, _, rest = key.partition("::")
            if kind == "model":
                model_state[rest] = arr
            elif kind == "ema":
                ema_state[rest] = arr
            elif kind == "opt":
                slot, _, idx = rest.partition("::")
                slots.setdefault(slot, {})[int(idx)] = arr
        opt_manifest = manifest.get("optimizer", {})
        optimizer_state = {
            "class": opt_manifest.get("class", ""),
            "hyper": opt_manifest.get("hyper", {}),
            "slots": {slot: [by_idx[i] for i in sorted(by_idx)]
                      for slot, by_idx in slots.items()},
        }
        return cls(
            model_state=model_state,
            optimizer_state=optimizer_state,
            rng_state=manifest["rng_state"],
            global_step=int(manifest["global_step"]),
            micro_step=int(manifest.get("micro_step", 0)),
            ema_state=ema_state if manifest.get("has_ema") else None,
            schedule_state=manifest.get("schedule_state", {}),
            task_state=manifest.get("task_state", {}),
            config_hash=manifest.get("config_hash", ""),
            meta=manifest.get("meta", {}),
            version=version,
        )


def verify_checkpoint(path: str | Path) -> bool:
    """True when ``path`` is a readable, checksum-clean TrainState.

    Never raises: unreadable bytes, checksum mismatches, and non-
    TrainState archives all return False. (Checksum verification uses
    the SHA-256 the :func:`repro.data.save_state_npz` sidecar records;
    sidecar-less archives verify by parseability.)
    """
    path = Path(path)
    if not verify_state_npz(path):
        return False
    try:
        arrays, manifest = load_state_npz(path, verify=False)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        # unreadable bytes, truncated archives, corrupt zip directories,
        # bad JSON manifests (JSONDecodeError is a ValueError) — all mean
        # "not a usable checkpoint", never an error
        return False
    return manifest.get("format") == "repro.train.TrainState"


def prune_tmp_files(directory: str | Path) -> list[Path]:
    """Delete orphaned ``*.tmp`` files a killed save left behind.

    The atomic write protocol (tmp + fsync + ``os.replace``) guarantees
    a ``*.tmp`` under a checkpoint directory is never a live artifact;
    returns the paths removed.
    """
    directory = Path(directory)
    removed = []
    if directory.is_dir():
        for tmp in directory.glob("*.tmp"):
            try:
                tmp.unlink()
                removed.append(tmp)
            except OSError:
                pass
    return removed


def latest_checkpoint(directory: str | Path,
                      verify: bool = True) -> Path | None:
    """The newest *valid* TrainState ``.npz`` in a checkpoint directory.

    Prefers the ``latest.json`` index written by
    :class:`~repro.train.callbacks.CheckpointCallback`; falls back to the
    highest-numbered ``state_*.npz``. With ``verify`` (default) every
    candidate is checked with :func:`verify_checkpoint` newest-first and
    corrupt/truncated entries are silently skipped — the self-healing
    fallback a crashed or chaos-injected save relies on. Orphaned
    ``*.tmp`` files are pruned on every call.
    """
    directory = Path(directory)
    prune_tmp_files(directory)
    candidates: list[Path] = []
    index = directory / "latest.json"
    if index.exists():
        try:
            name = json.loads(index.read_text()).get("latest")
        except (OSError, json.JSONDecodeError):
            name = None
        if name and (directory / name).exists():
            candidates.append(directory / name)
    for path in sorted(directory.glob("state_*.npz"), reverse=True):
        if path not in candidates:
            candidates.append(path)
    for path in candidates:
        if not verify or verify_checkpoint(path):
            return path
    return None
