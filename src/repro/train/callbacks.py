"""Unified training callbacks shared by every trainer.

Promoted from ``repro.gns.callbacks`` (which now re-exports these for
back-compat): EMA weights, early stopping, metric logging, and rolling
weights-only checkpoints — plus the pieces the shared
:class:`~repro.train.Trainer` adds on top:

* :class:`Callback` — the hook protocol (``on_train_begin`` /
  ``on_step_end`` / ``on_train_end``; ``on_step_end`` returning True
  stops training).
* :class:`CheckpointCallback` — periodic **full** :class:`TrainState`
  checkpoints (resumable, unlike ``CheckpointManager``'s weights-only
  files) with pruning and a ``latest.json`` index.
* :class:`ValidationCallback` — periodic validation with optional EMA
  evaluation, early stopping, best-weights retention, and metric
  logging; this is the single implementation behind what used to be
  ``GNSTrainer.train_with_validation``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable

import numpy as np

from ..nn import Module

__all__ = [
    "ExponentialMovingAverage", "EarlyStopping", "MetricLogger",
    "CheckpointManager", "Callback", "CheckpointCallback",
    "ValidationCallback",
]


class ExponentialMovingAverage:
    """Shadow parameters θ̄ ← decay·θ̄ + (1−decay)·θ.

    ``apply_to`` swaps the shadow weights into the module (keeping a
    backup); ``restore`` swaps the training weights back — the standard
    evaluate-with-EMA pattern. ``state_dict``/``load_state_dict`` round-
    trip the shadow for :class:`~repro.train.TrainState` checkpoints.
    """

    def __init__(self, module: Module, decay: float = 0.999):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.module = module
        self.decay = decay
        self.shadow = {name: p.data.copy()
                       for name, p in module.named_parameters()}
        self._backup: dict[str, np.ndarray] | None = None

    def update(self) -> None:
        d = self.decay
        for name, p in self.module.named_parameters():
            self.shadow[name] = d * self.shadow[name] + (1.0 - d) * p.data

    def apply_to(self) -> None:
        """Swap EMA weights in (call :meth:`restore` afterwards)."""
        if self._backup is not None:
            raise RuntimeError("EMA weights already applied")
        self._backup = {name: p.data for name, p in
                        self.module.named_parameters()}
        for name, p in self.module.named_parameters():
            p.data = self.shadow[name].copy()

    def restore(self) -> None:
        if self._backup is None:
            raise RuntimeError("no backup to restore")
        for name, p in self.module.named_parameters():
            p.data = self._backup[name]
        self._backup = None

    def __enter__(self):
        self.apply_to()
        return self

    def __exit__(self, *exc):
        self.restore()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: arr.copy() for name, arr in self.shadow.items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        missing = set(self.shadow) - set(state)
        unexpected = set(state) - set(self.shadow)
        if missing or unexpected:
            raise KeyError(f"EMA state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, arr in state.items():
            arr = np.asarray(arr)
            if arr.shape != self.shadow[name].shape:
                raise ValueError(f"EMA shape mismatch for {name}: "
                                 f"{arr.shape} vs {self.shadow[name].shape}")
            self.shadow[name] = arr.astype(self.shadow[name].dtype, copy=True)


class EarlyStopping:
    """Stop when a monitored metric hasn't improved for ``patience`` checks."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.best_step: int | None = None
        self.stale = 0

    def update(self, value: float, step: int | None = None) -> bool:
        """Record a metric; returns True when training should stop."""
        if value < self.best - self.min_delta:
            self.best = value
            self.best_step = step
            self.stale = 0
        else:
            self.stale += 1
        return self.stale >= self.patience


class MetricLogger:
    """Append-only metric rows with CSV persistence."""

    def __init__(self):
        self.rows: list[dict] = []

    def log(self, **metrics) -> None:
        self.rows.append(dict(metrics))

    def column(self, key: str) -> list:
        return [r[key] for r in self.rows if key in r]

    def to_csv(self, path: str | Path) -> None:
        if not self.rows:
            Path(path).write_text("")
            return
        keys: list[str] = []
        for r in self.rows:
            for k in r:
                if k not in keys:
                    keys.append(k)
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=keys)
            writer.writeheader()
            writer.writerows(self.rows)

    @classmethod
    def from_csv(cls, path: str | Path) -> "MetricLogger":
        logger = cls()
        with open(path, newline="") as f:
            for row in csv.DictReader(f):
                parsed = {}
                for k, v in row.items():
                    try:
                        parsed[k] = float(v)
                    except (TypeError, ValueError):
                        parsed[k] = v
                logger.rows.append(parsed)
        return logger


class CheckpointManager:
    """Rolling weights-only checkpoints plus a persistent best checkpoint.

    Works with any object exposing ``save(path)`` (e.g.
    :class:`~repro.gns.LearnedSimulator`). For *resumable* checkpoints
    use :class:`CheckpointCallback`, which snapshots the full
    :class:`~repro.train.TrainState`.
    """

    def __init__(self, directory: str | Path, max_to_keep: int = 3):
        if max_to_keep < 1:
            raise ValueError("max_to_keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_to_keep = max_to_keep
        self.best_metric = np.inf
        self._kept: list[Path] = []
        self._index_path = self.directory / "index.json"

    @property
    def best_path(self) -> Path:
        return self.directory / "best.npz"

    def save(self, model, step: int, metric: float | None = None) -> Path:
        """Save a step checkpoint (pruning old ones); update best."""
        path = self.directory / f"step_{step:08d}.npz"
        model.save(path)
        self._kept.append(path)
        while len(self._kept) > self.max_to_keep:
            old = self._kept.pop(0)
            old.unlink(missing_ok=True)
        if metric is not None and metric < self.best_metric:
            self.best_metric = float(metric)
            model.save(self.best_path)
        self._index_path.write_text(json.dumps({
            "kept": [p.name for p in self._kept],
            "best_metric": None if np.isinf(self.best_metric)
                           else self.best_metric,
        }))
        return path

    def latest_path(self) -> Path | None:
        return self._kept[-1] if self._kept else None


# ----------------------------------------------------------------------
# trainer callback protocol
# ----------------------------------------------------------------------

class Callback:
    """Hook protocol for :meth:`repro.train.Trainer.fit`."""

    def on_train_begin(self, trainer) -> None:
        pass

    def on_step_end(self, trainer, step: int, loss: float) -> bool | None:
        """Called after every optimizer step; return True to stop."""

    def on_train_end(self, trainer) -> None:
        pass


class CheckpointCallback(Callback):
    """Write a full resumable :class:`TrainState` every ``every`` steps.

    Keeps the newest ``max_to_keep`` states as ``state_<step>.npz`` and
    maintains a ``latest.json`` index so ``--resume DIR`` can find the
    most recent one. A final state is always written at ``on_train_end``.
    """

    def __init__(self, directory: str | Path, every: int = 100,
                 max_to_keep: int = 3):
        if every < 1:
            raise ValueError("every must be >= 1")
        if max_to_keep < 1:
            raise ValueError("max_to_keep must be >= 1")
        self.directory = Path(directory)
        self.every = int(every)
        self.max_to_keep = int(max_to_keep)
        self._kept: list[Path] = []

    def _write(self, trainer, step: int) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"state_{step:08d}.npz"
        trainer.save(path)
        if path not in self._kept:
            self._kept.append(path)
        while len(self._kept) > self.max_to_keep:
            old = self._kept.pop(0)
            old.unlink(missing_ok=True)
            old.with_suffix(old.suffix + ".json").unlink(missing_ok=True)
        (self.directory / "latest.json").write_text(json.dumps({
            "latest": path.name, "step": step,
            "kept": [p.name for p in self._kept]}))
        return path

    def on_step_end(self, trainer, step: int, loss: float) -> None:
        if step % self.every == 0:
            self._write(trainer, step)

    def on_train_end(self, trainer) -> None:
        if trainer.global_step > 0:
            self._write(trainer, trainer.global_step)


class ValidationCallback(Callback):
    """Periodic validation with EMA evaluation, early stopping, and
    best-weights retention — one implementation for every trainer.

    ``validate`` maps the trainer to a scalar metric (lower = better).
    When the trainer has an EMA, validation and best-checkpoint saving
    run under the shadow weights. When the trainer's schedule is a
    :class:`~repro.train.schedules.ReduceOnPlateau`, each metric is also
    reported to it.
    """

    def __init__(self, validate: Callable[[object], float], every: int = 50,
                 patience: int | None = None,
                 checkpoint_dir: str | Path | None = None,
                 metric_name: str = "val_mse",
                 logger: MetricLogger | None = None):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.validate = validate
        self.every = int(every)
        self.metric_name = metric_name
        self.logger = logger if logger is not None else MetricLogger()
        self.stopper = EarlyStopping(patience) if patience is not None else None
        self.manager = (CheckpointManager(checkpoint_dir)
                        if checkpoint_dir is not None else None)

    def on_step_end(self, trainer, step: int, loss: float) -> bool | None:
        if step % self.every != 0:
            return None
        from ..obs import get_registry
        from .schedules import ReduceOnPlateau, WarmupSchedule

        ema = trainer.ema
        if ema is not None:
            with ema:
                value = float(self.validate(trainer))
        else:
            value = float(self.validate(trainer))
        self.logger.log(step=step, train_loss=loss,
                        **{self.metric_name: value})
        reg = get_registry()
        if reg.enabled:
            reg.series(f"train.{self.metric_name}").append(step, value)
        sched = trainer.schedule
        if isinstance(sched, WarmupSchedule):
            sched = sched.base
        if isinstance(sched, ReduceOnPlateau):
            sched.report(value)
        if self.manager is not None:
            if ema is not None:
                with ema:
                    self.manager.save(trainer.model, step, value)
            else:
                self.manager.save(trainer.model, step, value)
        if self.stopper is not None and self.stopper.update(value, step):
            return True
        return None
