"""Rendering particle systems and fields to RGB images.

Pure NumPy rasterization: particles become filled disks via a distance
test against a pixel-offset stencil; scalar fields map through a colormap
with optional upsampling. These feed :mod:`repro.viz.image` (PPM/PNG) and
:mod:`repro.viz.gif` (animations) — the in-situ-visualization story the
paper's CCS concepts reference, with zero external dependencies.
"""

from __future__ import annotations

import numpy as np

from .colormaps import Colormap, get_colormap

__all__ = ["rasterize_particles", "render_field", "render_frames",
           "vorticity", "upsample"]


def rasterize_particles(positions: np.ndarray,
                        bounds: np.ndarray,
                        resolution: int = 200,
                        radius_px: int = 2,
                        values: np.ndarray | None = None,
                        cmap: str | Colormap = "viridis",
                        vmin: float | None = None,
                        vmax: float | None = None,
                        background: tuple = (20, 20, 28)) -> np.ndarray:
    """Draw particles as filled disks.

    Parameters
    ----------
    positions: ``(n, 2)`` particle coordinates.
    bounds: ``(2, 2)`` [[xlo, xhi], [ylo, yhi]] world window.
    resolution: image width in pixels (height follows the aspect ratio).
    values: optional per-particle scalars (colored by ``cmap``);
        uniform color when omitted.
    radius_px: disk radius in pixels.

    Returns
    -------
    ``(H, W, 3)`` uint8 image with y up (row 0 = top of the domain).
    """
    pos = np.asarray(positions, dtype=np.float64)
    bounds = np.asarray(bounds, dtype=np.float64)
    xlo, xhi = bounds[0]
    ylo, yhi = bounds[1]
    if xhi <= xlo or yhi <= ylo:
        raise ValueError("degenerate bounds")
    w = int(resolution)
    h = max(int(round(resolution * (yhi - ylo) / (xhi - xlo))), 1)

    img = np.empty((h, w, 3), dtype=np.uint8)
    img[:] = np.asarray(background, dtype=np.uint8)

    if pos.shape[0] == 0:
        return img

    cmap = get_colormap(cmap) if isinstance(cmap, str) else cmap
    if values is None:
        colors = np.tile(cmap(np.array([0.7]), 0.0, 1.0)[0], (pos.shape[0], 1))
    else:
        colors = cmap(np.asarray(values), vmin, vmax)

    px = ((pos[:, 0] - xlo) / (xhi - xlo) * (w - 1)).round().astype(np.int64)
    py = ((yhi - pos[:, 1]) / (yhi - ylo) * (h - 1)).round().astype(np.int64)

    # disk stencil offsets
    r = int(radius_px)
    oy, ox = np.mgrid[-r:r + 1, -r:r + 1]
    keep = (ox ** 2 + oy ** 2) <= r * r
    ox, oy = ox[keep], oy[keep]

    xs = (px[:, None] + ox[None, :]).ravel()
    ys = (py[:, None] + oy[None, :]).ravel()
    cs = np.repeat(colors, ox.size, axis=0)
    inside = (xs >= 0) & (xs < w) & (ys >= 0) & (ys < h)
    img[ys[inside], xs[inside]] = cs[inside]
    return img


def upsample(field: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbor upsampling of a 2-D (or 2-D+channel) array."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return np.repeat(np.repeat(field, factor, axis=0), factor, axis=1)


def render_field(field: np.ndarray,
                 cmap: str | Colormap = "coolwarm",
                 vmin: float | None = None,
                 vmax: float | None = None,
                 scale: int = 1,
                 transpose: bool = True) -> np.ndarray:
    """Render a scalar lattice field ``(nx, ny)`` to RGB.

    With ``transpose=True`` (default) the x axis runs along image columns
    and y along rows with y up — matching the solver's (x, y) layout.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("expected a 2-D scalar field")
    if transpose:
        f = f.T[::-1]   # (ny, nx) with row 0 = top
    cmap = get_colormap(cmap) if isinstance(cmap, str) else cmap
    rgb = cmap(f, vmin, vmax)
    if scale > 1:
        rgb = upsample(rgb, scale)
    return rgb


def vorticity(velocity_field: np.ndarray) -> np.ndarray:
    """ω = ∂v/∂x − ∂u/∂y of an ``(nx, ny, 2)`` lattice velocity field."""
    u = np.asarray(velocity_field)
    if u.ndim != 3 or u.shape[2] != 2:
        raise ValueError("expected (nx, ny, 2) velocity field")
    dv_dx = np.gradient(u[:, :, 1], axis=0)
    du_dy = np.gradient(u[:, :, 0], axis=1)
    return dv_dx - du_dy


def render_frames(frames: np.ndarray, bounds: np.ndarray,
                  resolution: int = 200, **kwargs) -> list[np.ndarray]:
    """Rasterize a ``(T, n, 2)`` trajectory into a list of RGB frames
    (feed straight into :func:`repro.viz.write_gif`)."""
    return [rasterize_particles(f, bounds, resolution, **kwargs)
            for f in np.asarray(frames)]
