"""Zero-dependency visualization: colormaps, PPM/PNG/GIF writers, and
particle/field rasterization (the in-situ-viz layer)."""

from .colormaps import COLORMAPS, Colormap, get_colormap
from .image import read_ppm, write_png, write_ppm
from .gif import quantize_rgb, write_gif
from .render import rasterize_particles, render_field, render_frames, upsample, vorticity
from .chart import SERIES_COLORS, line_chart
from .font import render_text, text_width

__all__ = [
    "COLORMAPS", "Colormap", "get_colormap",
    "read_ppm", "write_png", "write_ppm",
    "quantize_rgb", "write_gif",
    "rasterize_particles", "render_field", "render_frames", "upsample",
    "vorticity",
    "SERIES_COLORS", "line_chart", "render_text", "text_width",
]
