"""Colormaps (pure NumPy — no matplotlib available offline).

Anchor-point colormaps evaluated by linear interpolation in RGB space:

* ``viridis`` — perceptually-uniform sequential (anchor subsample of the
  matplotlib original).
* ``coolwarm`` — diverging, for signed fields (vorticity, velocity).
* ``grayscale`` — for masks and debugging.
* ``terrain`` — for granular deposit heights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Colormap", "get_colormap", "COLORMAPS"]

# (position, r, g, b) anchors, 0–255
_VIRIDIS = [
    (0.00, 68, 1, 84), (0.125, 72, 36, 117), (0.25, 65, 68, 135),
    (0.375, 53, 95, 141), (0.50, 42, 120, 142), (0.625, 33, 145, 140),
    (0.75, 34, 168, 132), (0.875, 122, 209, 81), (1.00, 253, 231, 37),
]
_COOLWARM = [
    (0.00, 59, 76, 192), (0.25, 124, 159, 249), (0.50, 221, 221, 221),
    (0.75, 245, 156, 125), (1.00, 180, 4, 38),
]
_GRAYSCALE = [(0.0, 0, 0, 0), (1.0, 255, 255, 255)]
_TERRAIN = [
    (0.00, 40, 54, 24), (0.35, 120, 120, 48), (0.65, 180, 140, 90),
    (1.00, 245, 240, 220),
]


class Colormap:
    """Piecewise-linear RGB colormap."""

    def __init__(self, name: str, anchors: list[tuple]):
        self.name = name
        arr = np.asarray(anchors, dtype=np.float64)
        self._pos = arr[:, 0]
        self._rgb = arr[:, 1:4]
        if not np.all(np.diff(self._pos) > 0):
            raise ValueError("anchor positions must be strictly increasing")

    def __call__(self, values: np.ndarray,
                 vmin: float | None = None,
                 vmax: float | None = None) -> np.ndarray:
        """Map values to ``(..., 3)`` uint8 RGB.

        ``vmin``/``vmax`` default to the data range; NaNs map to black.
        """
        v = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(v)
        lo = float(np.min(v[finite])) if vmin is None and finite.any() else (vmin or 0.0)
        hi = float(np.max(v[finite])) if vmax is None and finite.any() else (vmax or 1.0)
        if hi <= lo:
            hi = lo + 1.0
        t = np.clip((v - lo) / (hi - lo), 0.0, 1.0)
        t = np.where(finite, t, 0.0)
        out = np.empty(t.shape + (3,), dtype=np.float64)
        for c in range(3):
            out[..., c] = np.interp(t, self._pos, self._rgb[:, c])
        out[~finite] = 0.0
        return out.astype(np.uint8)

    def palette(self, n: int = 256) -> np.ndarray:
        """An ``(n, 3)`` uint8 palette table (for GIF encoding)."""
        return self(np.linspace(0.0, 1.0, n), vmin=0.0, vmax=1.0)


COLORMAPS: dict[str, Colormap] = {
    "viridis": Colormap("viridis", _VIRIDIS),
    "coolwarm": Colormap("coolwarm", _COOLWARM),
    "grayscale": Colormap("grayscale", _GRAYSCALE),
    "terrain": Colormap("terrain", _TERRAIN),
}


def get_colormap(name: str) -> Colormap:
    """Look up a named colormap."""
    try:
        return COLORMAPS[name]
    except KeyError:
        raise KeyError(f"unknown colormap {name!r}; "
                       f"available: {sorted(COLORMAPS)}") from None
