"""Line charts rendered straight to RGB arrays (no matplotlib offline).

Enough of a plotting system for the paper's figures: framed axes with
ticks and numeric labels, multiple series with a legend, optional log-y.
Used by the benchmarks to emit error-evolution figures (Fig 3/4-style)
next to their text tables.
"""

from __future__ import annotations

import numpy as np

from .colormaps import get_colormap
from .font import GLYPH_H, render_text, text_width

__all__ = ["line_chart", "SERIES_COLORS"]

SERIES_COLORS = [
    (86, 180, 233),    # sky blue
    (230, 159, 0),     # orange
    (0, 158, 115),     # bluish green
    (204, 121, 167),   # reddish purple
    (240, 228, 66),    # yellow
    (213, 94, 0),      # vermillion
]
_BG = (18, 18, 24)
_FRAME = (120, 120, 130)
_TEXT = (220, 220, 225)
_GRID = (45, 45, 55)


def _draw_segment(img, x0, y0, x1, y1, color):
    """Dense-sampled line segment (clip at borders)."""
    h, w = img.shape[:2]
    length = int(max(abs(x1 - x0), abs(y1 - y0), 1)) * 2
    xs = np.linspace(x0, x1, length).round().astype(int)
    ys = np.linspace(y0, y1, length).round().astype(int)
    keep = (xs >= 0) & (xs < w) & (ys >= 0) & (ys < h)
    img[ys[keep], xs[keep]] = color


def _nice_ticks(lo: float, hi: float, n: int = 5) -> np.ndarray:
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10.0 ** np.floor(np.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        if raw <= mult * mag:
            step = mult * mag
            break
    start = np.ceil(lo / step) * step
    ticks = np.arange(start, hi + step * 1e-9, step)
    return ticks[(ticks >= lo - 1e-12) & (ticks <= hi + 1e-12)]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-3:
        return f"{v:.1e}"
    if abs(v) >= 100 or v == int(v):
        return f"{v:.0f}"
    if abs(v) >= 1:
        return f"{v:.2f}"
    return f"{v:.3f}"


def line_chart(series: dict[str, tuple], size: tuple[int, int] = (640, 400),
               title: str = "", x_label: str = "", y_label: str = "",
               log_y: bool = False,
               colors: list[tuple] | None = None) -> np.ndarray:
    """Render named (x, y) series to an ``(H, W, 3)`` uint8 image.

    Parameters
    ----------
    series: mapping name → (x array, y array); NaNs break the polyline.
    log_y: plot log10(y) (all finite y must be positive).
    """
    if not series:
        raise ValueError("no series to plot")
    w, h = size
    img = np.empty((h, w, 3), dtype=np.uint8)
    img[:] = _BG
    colors = colors or SERIES_COLORS

    # transform + collect ranges
    data = {}
    x_lo = y_lo = np.inf
    x_hi = y_hi = -np.inf
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError(f"series {name!r} must be matching 1-D arrays")
        if log_y:
            finite = np.isfinite(ys)
            if np.any(ys[finite] <= 0):
                raise ValueError("log_y requires positive values")
            ys = np.where(finite, np.log10(np.maximum(ys, 1e-300)), np.nan)
        data[name] = (xs, ys)
        ok = np.isfinite(xs) & np.isfinite(ys)
        if ok.any():
            x_lo, x_hi = min(x_lo, xs[ok].min()), max(x_hi, xs[ok].max())
            y_lo, y_hi = min(y_lo, ys[ok].min()), max(y_hi, ys[ok].max())
    if not np.isfinite([x_lo, x_hi, y_lo, y_hi]).all():
        raise ValueError("no finite data to plot")
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    pad = 0.04 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    # plot frame
    ml, mr, mt, mb = 62, 14, 26 if title else 14, 40
    px0, px1 = ml, w - mr
    py0, py1 = mt, h - mb

    def to_px(xs, ys):
        x = px0 + (xs - x_lo) / (x_hi - x_lo) * (px1 - px0)
        y = py1 - (ys - y_lo) / (y_hi - y_lo) * (py1 - py0)
        return x, y

    # gridlines + ticks
    for tx in _nice_ticks(x_lo, x_hi):
        x, _ = to_px(np.array([tx]), np.array([y_lo]))
        xi = int(round(x[0]))
        _draw_segment(img, xi, py0, xi, py1, _GRID)
        label = _fmt(tx)
        render_text(img, xi - text_width(label) // 2, py1 + 6, label, _TEXT)
    for ty in _nice_ticks(y_lo, y_hi):
        _, y = to_px(np.array([x_lo]), np.array([ty]))
        yi = int(round(y[0]))
        _draw_segment(img, px0, yi, px1, yi, _GRID)
        label = _fmt(10 ** ty if log_y else ty)
        render_text(img, px0 - text_width(label) - 6,
                    yi - GLYPH_H // 2, label, _TEXT)

    # frame box
    for (a, b, c, d) in ((px0, py0, px1, py0), (px0, py1, px1, py1),
                         (px0, py0, px0, py1), (px1, py0, px1, py1)):
        _draw_segment(img, a, b, c, d, _FRAME)

    # series
    for k, (name, (xs, ys)) in enumerate(data.items()):
        color = colors[k % len(colors)]
        x_px, y_px = to_px(xs, ys)
        ok = np.isfinite(x_px) & np.isfinite(y_px)
        for i in range(len(xs) - 1):
            if ok[i] and ok[i + 1]:
                _draw_segment(img, x_px[i], y_px[i], x_px[i + 1], y_px[i + 1],
                              color)

    # legend (top-right inside the frame)
    ly = py0 + 6
    for k, name in enumerate(data):
        color = colors[k % len(colors)]
        lx = px1 - 120
        _draw_segment(img, lx, ly + GLYPH_H // 2, lx + 14, ly + GLYPH_H // 2,
                      color)
        render_text(img, lx + 20, ly, name[:16], _TEXT)
        ly += GLYPH_H + 5

    # titles
    if title:
        render_text(img, (w - text_width(title)) // 2, 8, title, _TEXT)
    if x_label:
        render_text(img, (w - text_width(x_label)) // 2, h - GLYPH_H - 4,
                    x_label, _TEXT)
    if y_label:
        render_text(img, 4, 8, y_label, _TEXT)
    return img
