"""Image encoders in pure Python/NumPy (PPM and PNG via stdlib zlib)."""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "write_png", "read_ppm"]


def _validate_rgb(image: np.ndarray) -> np.ndarray:
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB image, got {img.shape}")
    if img.dtype != np.uint8:
        img = np.clip(img, 0, 255).astype(np.uint8)
    return img


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write a binary PPM (P6) — zero-dependency and fast."""
    img = _validate_rgb(image)
    h, w = img.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(img.tobytes())


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM written by :func:`write_ppm`."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise ValueError("not a binary PPM (P6) file")
    # header: magic, width, height, maxval, then a single whitespace byte
    parts = data.split(b"\n", 3)
    w, h = map(int, parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ValueError("only 8-bit PPM supported")
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=w * h * 3)
    return pixels.reshape(h, w, 3).copy()


def _png_chunk(tag: bytes, payload: bytes) -> bytes:
    return (struct.pack(">I", len(payload)) + tag + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF))


def write_png(path: str | Path, image: np.ndarray,
              compress_level: int = 6) -> None:
    """Write an 8-bit RGB PNG (no interlacing, filter type 0)."""
    img = _validate_rgb(image)
    h, w = img.shape[:2]
    header = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)  # 8-bit truecolor
    # prepend the per-scanline filter byte (0 = None)
    raw = np.concatenate(
        [np.zeros((h, 1), dtype=np.uint8), img.reshape(h, w * 3)], axis=1)
    idat = zlib.compress(raw.tobytes(), compress_level)
    with open(path, "wb") as f:
        f.write(b"\x89PNG\r\n\x1a\n")
        f.write(_png_chunk(b"IHDR", header))
        f.write(_png_chunk(b"IDAT", idat))
        f.write(_png_chunk(b"IEND", b""))
