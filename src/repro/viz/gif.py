"""Animated GIF writer (GIF89a with LZW compression, pure Python).

Used by the examples to export particle-flow and vorticity animations
without any imaging dependency. Frames are paletted with a colormap's
256-entry table; RGB frames are quantized to a 6×7×6 color cube.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

__all__ = ["write_gif", "quantize_rgb"]


class _BitPacker:
    """LSB-first variable-width code packer (the GIF bit order)."""

    def __init__(self):
        self._acc = 0
        self._nbits = 0
        self.bytes = bytearray()

    def push(self, code: int, width: int) -> None:
        self._acc |= code << self._nbits
        self._nbits += width
        while self._nbits >= 8:
            self.bytes.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def flush(self) -> None:
        if self._nbits:
            self.bytes.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0


def _lzw_encode(indices: np.ndarray, min_code_size: int = 8) -> bytes:
    """GIF-flavor LZW: variable code width, CLEAR/EOI codes, 12-bit cap."""
    clear = 1 << min_code_size
    eoi = clear + 1
    packer = _BitPacker()

    def reset_table():
        return {(-1, s): s for s in range(clear)}, eoi + 1, min_code_size + 1

    table, next_code, width = reset_table()
    packer.push(clear, width)

    prefix = -1
    for sym in indices.tolist():
        key = (prefix, sym)
        code = table.get(key)
        if code is not None:
            prefix = code
            continue
        packer.push(prefix, width)
        table[key] = next_code
        next_code += 1
        if next_code > (1 << width) and width < 12:
            width += 1
        elif next_code >= 4096:
            packer.push(clear, width)
            table, next_code, width = reset_table()
        prefix = sym
    if prefix != -1:
        packer.push(prefix, width)
    packer.push(eoi, width)
    packer.flush()
    return bytes(packer.bytes)


def _sub_blocks(data: bytes) -> bytes:
    out = bytearray()
    for i in range(0, len(data), 255):
        chunk = data[i:i + 255]
        out.append(len(chunk))
        out.extend(chunk)
    out.append(0)
    return bytes(out)


def quantize_rgb(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Quantize an (H, W, 3) uint8 image to a fixed 6×7×6 color cube.

    Returns (indices (H, W) uint8, palette (252, 3) uint8).
    """
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError("expected (H, W, 3) RGB image")
    levels = (6, 7, 6)
    q = [np.minimum((img[..., c].astype(np.int32) * levels[c]) // 256,
                    levels[c] - 1) for c in range(3)]
    indices = (q[0] * levels[1] + q[1]) * levels[2] + q[2]
    r, g, b = np.meshgrid(*[np.arange(n) for n in levels], indexing="ij")
    palette = np.stack([
        (r.ravel() * 255) // (levels[0] - 1),
        (g.ravel() * 255) // (levels[1] - 1),
        (b.ravel() * 255) // (levels[2] - 1),
    ], axis=1).astype(np.uint8)
    return indices.astype(np.uint8), palette


def write_gif(path: str | Path, frames: list[np.ndarray],
              palette: np.ndarray | None = None,
              delay_cs: int = 5, loop: bool = True) -> None:
    """Write an animated GIF.

    Parameters
    ----------
    frames:
        Either (H, W) uint8 palette-index arrays (requires ``palette``)
        or (H, W, 3) uint8 RGB arrays (auto-quantized to a color cube).
    palette:
        ``(n ≤ 256, 3)`` uint8 color table for index frames.
    delay_cs:
        Per-frame delay in centiseconds.
    """
    if not frames:
        raise ValueError("no frames")
    first = np.asarray(frames[0])
    if first.ndim == 3:
        quantized = [quantize_rgb(np.asarray(f)) for f in frames]
        index_frames = [q[0] for q in quantized]
        palette = quantized[0][1]
    else:
        if palette is None:
            raise ValueError("palette required for index frames")
        index_frames = [np.asarray(f, dtype=np.uint8) for f in frames]
    palette = np.asarray(palette, dtype=np.uint8)
    if palette.ndim != 2 or palette.shape[1] != 3 or palette.shape[0] > 256:
        raise ValueError("palette must be (n<=256, 3)")

    h, w = index_frames[0].shape
    for f in index_frames:
        if f.shape != (h, w):
            raise ValueError("all frames must share one shape")

    # pad the color table to a power of two
    size = 2
    while size < max(palette.shape[0], 2):
        size *= 2
    table = np.zeros((size, 3), dtype=np.uint8)
    table[:palette.shape[0]] = palette

    out = bytearray()
    out.extend(b"GIF89a")
    packed = 0x80 | ((size.bit_length() - 2) & 0x07)  # global table, 2^(n+1)
    out.extend(struct.pack("<HHBBB", w, h, packed, 0, 0))
    out.extend(table.tobytes())
    if loop and len(index_frames) > 1:
        out.extend(b"\x21\xff\x0bNETSCAPE2.0\x03\x01\x00\x00\x00")

    for frame in index_frames:
        # graphics control extension (delay)
        out.extend(b"\x21\xf9\x04\x00" + struct.pack("<H", delay_cs) + b"\x00\x00")
        # image descriptor (no local color table)
        out.extend(b"\x2c" + struct.pack("<HHHHB", 0, 0, w, h, 0))
        out.append(8)  # LZW minimum code size
        out.extend(_sub_blocks(_lzw_encode(frame.ravel())))
    out.append(0x3B)
    Path(path).write_bytes(bytes(out))
