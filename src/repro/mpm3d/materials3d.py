"""3-D constitutive models (full stress tensors — no plane-strain
special-casing, so the code is simpler than the 2-D versions)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Material3D", "LinearElastic3D", "DruckerPrager3D"]

_EYE3 = np.eye(3)


@dataclass
class Material3D:
    """Isotropic elastic base with Lamé constants from (E, ν)."""

    density: float
    youngs_modulus: float
    poisson_ratio: float

    @property
    def mu(self) -> float:
        return self.youngs_modulus / (2.0 * (1.0 + self.poisson_ratio))

    @property
    def lam(self) -> float:
        e, nu = self.youngs_modulus, self.poisson_ratio
        return e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu))

    def wave_speed(self) -> float:
        return float(np.sqrt((self.lam + 2.0 * self.mu) / self.density))

    def elastic_increment(self, strain_inc: np.ndarray) -> np.ndarray:
        """Hooke's law for ``(n, 3, 3)`` strain increments."""
        tr = np.trace(strain_inc, axis1=1, axis2=2)
        return (self.lam * tr[:, None, None] * _EYE3
                + 2.0 * self.mu * strain_inc)

    def update_stress(self, stresses, strain_inc, spin_inc, **kwargs):
        raise NotImplementedError  # pragma: no cover


def _jaumann(stresses: np.ndarray, spin_inc: np.ndarray) -> np.ndarray:
    return stresses + spin_inc @ stresses - stresses @ spin_inc


@dataclass
class LinearElastic3D(Material3D):
    def update_stress(self, stresses: np.ndarray, strain_inc: np.ndarray,
                      spin_inc: np.ndarray, **kwargs) -> np.ndarray:
        return _jaumann(stresses, spin_inc) + self.elastic_increment(strain_inc)


@dataclass
class DruckerPrager3D(Material3D):
    """Drucker–Prager with the inscribed Mohr–Coulomb fit in 3-D."""

    friction_angle: float = 30.0
    cohesion: float = 0.0

    def _cone(self) -> tuple[float, float]:
        phi = np.deg2rad(self.friction_angle)
        s, c = np.sin(phi), np.cos(phi)
        denom = np.sqrt(3.0) * (3.0 - s)
        alpha = 2.0 * np.sqrt(3.0) * s / denom
        k = 6.0 * self.cohesion * c / denom
        return float(alpha), float(k)

    def update_stress(self, stresses: np.ndarray, strain_inc: np.ndarray,
                      spin_inc: np.ndarray, **kwargs) -> np.ndarray:
        trial = _jaumann(stresses, spin_inc) + self.elastic_increment(strain_inc)

        p = np.trace(trial, axis1=1, axis2=2) / 3.0     # tension positive
        dev = trial - p[:, None, None] * _EYE3
        j2 = 0.5 * np.einsum("nij,nij->n", dev, dev)
        q = np.sqrt(np.maximum(j2, 1e-30))

        alpha, k = self._cone()
        f = q + alpha * p - k
        apex = k / alpha if alpha > 0 else np.inf
        tension = p > apex
        p_new = np.where(tension, apex, p)
        q_allow = np.maximum(k - alpha * p_new, 0.0)
        yielding = (f > 0.0) | tension
        scale = np.where(yielding & (q > 1e-20),
                         np.minimum(q_allow / q, 1.0), 1.0)
        return dev * scale[:, None, None] + p_new[:, None, None] * _EYE3
