"""3-D B-spline shape functions (trilinear: 8 nodes; quadratic: 27 nodes).

Vectorized exactly like the 2-D kernels: one array op per offset, no
per-particle Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShapeKernel3D", "LinearShape3D", "QuadraticShape3D", "make_shape3d"]


@dataclass
class ShapeKernel3D:
    """Particle→node influence sets: ids (n, k), weights (n, k),
    gradients (n, k, 3)."""

    nodes: np.ndarray
    weights: np.ndarray
    grads: np.ndarray


def _bspline_quadratic(d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    ad = np.abs(d)
    w = np.where(ad < 0.5, 0.75 - d * d,
                 np.where(ad < 1.5, 0.5 * (1.5 - ad) ** 2, 0.0))
    dw = np.where(ad < 0.5, -2.0 * d,
                  np.where(ad < 1.5, (ad - 1.5) * np.sign(d), 0.0))
    return w, dw


class LinearShape3D:
    """Trilinear hats: support h, 8 nodes per particle."""

    nodes_per_particle = 8

    def __call__(self, positions: np.ndarray, h: float,
                 node_dims: tuple[int, int, int]) -> ShapeKernel3D:
        pos = np.asarray(positions, dtype=np.float64)
        n = pos.shape[0]
        xi = pos / h
        base = np.floor(xi).astype(np.int64)
        frac = xi - base

        w1 = np.stack([1.0 - frac, frac], axis=0)             # (2, n, 3)
        dw1 = np.stack([-np.ones_like(frac), np.ones_like(frac)],
                       axis=0) / h

        ny, nz = node_dims[1], node_dims[2]
        nodes = np.empty((n, 8), dtype=np.int64)
        weights = np.empty((n, 8))
        grads = np.empty((n, 8, 3))
        k = 0
        for i in range(2):
            for j in range(2):
                for l in range(2):
                    nodes[:, k] = ((base[:, 0] + i) * ny + (base[:, 1] + j)
                                   ) * nz + (base[:, 2] + l)
                    weights[:, k] = w1[i, :, 0] * w1[j, :, 1] * w1[l, :, 2]
                    grads[:, k, 0] = dw1[i, :, 0] * w1[j, :, 1] * w1[l, :, 2]
                    grads[:, k, 1] = w1[i, :, 0] * dw1[j, :, 1] * w1[l, :, 2]
                    grads[:, k, 2] = w1[i, :, 0] * w1[j, :, 1] * dw1[l, :, 2]
                    k += 1
        return ShapeKernel3D(nodes, weights, grads)


class QuadraticShape3D:
    """Quadratic B-splines: support 1.5h, 27 nodes per particle."""

    nodes_per_particle = 27

    def __call__(self, positions: np.ndarray, h: float,
                 node_dims: tuple[int, int, int]) -> ShapeKernel3D:
        pos = np.asarray(positions, dtype=np.float64)
        n = pos.shape[0]
        xi = pos / h
        base = np.floor(xi - 0.5).astype(np.int64)

        w1 = np.empty((3, n, 3))
        dw1 = np.empty((3, n, 3))
        for o in range(3):
            d = xi - (base + o)
            w1[o], dw1[o] = _bspline_quadratic(d)
        dw1 /= h

        ny, nz = node_dims[1], node_dims[2]
        nodes = np.empty((n, 27), dtype=np.int64)
        weights = np.empty((n, 27))
        grads = np.empty((n, 27, 3))
        k = 0
        for i in range(3):
            for j in range(3):
                for l in range(3):
                    nodes[:, k] = ((base[:, 0] + i) * ny + (base[:, 1] + j)
                                   ) * nz + (base[:, 2] + l)
                    weights[:, k] = w1[i, :, 0] * w1[j, :, 1] * w1[l, :, 2]
                    grads[:, k, 0] = dw1[i, :, 0] * w1[j, :, 1] * w1[l, :, 2]
                    grads[:, k, 1] = w1[i, :, 0] * dw1[j, :, 1] * w1[l, :, 2]
                    grads[:, k, 2] = w1[i, :, 0] * w1[j, :, 1] * dw1[l, :, 2]
                    k += 1
        return ShapeKernel3D(nodes, weights, grads)


def make_shape3d(kind: str):
    if kind == "linear":
        return LinearShape3D()
    if kind == "quadratic":
        return QuadraticShape3D()
    raise ValueError(f"unknown shape function {kind!r}")
