"""3-D explicit USL MPM: grid, particles, boundary, and solver.

The 2-D solver scaled up: flat node arrays over an (nx, ny, nz) grid,
27-node quadratic transfers, frictional box boundaries on all six faces.
Addresses the paper's §7 observation that regional-scale problems are
three-dimensional.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .materials3d import Material3D
from .shape3d import make_shape3d

__all__ = ["Particles3D", "Grid3D", "BoxBoundary3D", "MPM3DConfig",
           "MPM3DSolver", "block_particles"]


@dataclass
class Particles3D:
    """Struct-of-arrays particle state for 3-D MPM."""

    positions: np.ndarray             # (n, 3)
    velocities: np.ndarray            # (n, 3)
    masses: np.ndarray                # (n,)
    volumes: np.ndarray               # (n,)
    stresses: np.ndarray              # (n, 3, 3)

    def __post_init__(self):
        n = self.positions.shape[0]
        if self.velocities.shape != (n, 3) or self.positions.shape != (n, 3):
            raise ValueError("positions/velocities must be (n, 3)")
        if self.stresses.shape != (n, 3, 3):
            raise ValueError("stresses must be (n, 3, 3)")
        for name in ("masses", "volumes"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must be (n,)")

    @property
    def count(self) -> int:
        return self.positions.shape[0]

    def total_mass(self) -> float:
        return float(self.masses.sum())

    def total_momentum(self) -> np.ndarray:
        return (self.masses[:, None] * self.velocities).sum(axis=0)

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.masses
                            * (self.velocities ** 2).sum(axis=1)).sum())


def block_particles(lower, upper, spacing: float, density: float,
                    velocity=(0.0, 0.0, 0.0)) -> Particles3D:
    """Regular lattice filling an axis-aligned box."""
    axes = [np.arange(lo + spacing / 2, hi, spacing)
            for lo, hi in zip(lower, upper)]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    n = pos.shape[0]
    vol = np.full(n, spacing ** 3)
    return Particles3D(
        positions=pos,
        velocities=np.tile(np.asarray(velocity, dtype=np.float64), (n, 1)),
        masses=vol * density,
        volumes=vol.copy(),
        stresses=np.zeros((n, 3, 3)),
    )


@dataclass
class BoxBoundary3D:
    """Rigid box on all six faces (slip / frictional / sticky)."""

    friction: float = 0.3
    mode: str = "frictional"
    thickness: int = 2

    def apply(self, grid: "Grid3D", velocities: np.ndarray) -> np.ndarray:
        v = velocities.copy()
        t = self.thickness
        dims = grid.node_dims
        coords = grid.node_coords  # (N, 3) integer indices

        if self.mode == "sticky":
            wall = np.zeros(v.shape[0], dtype=bool)
            for axis in range(3):
                wall |= (coords[:, axis] <= t) | \
                        (coords[:, axis] >= dims[axis] - 1 - t)
            v[wall] = 0.0
            return v

        for axis in range(3):
            for mask, sign in (
                (coords[:, axis] <= t, -1.0),
                (coords[:, axis] >= dims[axis] - 1 - t, 1.0),
            ):
                vn = v[mask, axis] * sign
                out = vn > 0.0
                if not np.any(out):
                    continue
                idx = np.nonzero(mask)[0][out]
                removed = vn[out]
                v[idx, axis] = 0.0
                if self.mode == "frictional" and self.friction > 0.0:
                    tang = [a for a in range(3) if a != axis]
                    vt = v[np.ix_(idx, tang)]
                    mag = np.linalg.norm(vt, axis=1)
                    keep = np.maximum(mag - self.friction * removed, 0.0)
                    scale = np.where(mag > 1e-15, keep / np.maximum(mag, 1e-15), 0.0)
                    v[np.ix_(idx, tang)] = vt * scale[:, None]
        return v


class Grid3D:
    """Structured background grid over an axis-aligned box."""

    def __init__(self, size, spacing: float,
                 boundary: BoxBoundary3D | None = None):
        self.size = tuple(float(s) for s in size)
        self.spacing = float(spacing)
        cells = []
        for s in self.size:
            c = int(round(s / spacing))
            if not np.isclose(c * spacing, s):
                raise ValueError("size must be a multiple of spacing")
            cells.append(c)
        self.node_dims = tuple(c + 1 for c in cells)
        self.num_nodes = int(np.prod(self.node_dims))
        self.boundary = boundary or BoxBoundary3D()

        idx = np.arange(self.num_nodes)
        nx, ny, nz = self.node_dims
        ix = idx // (ny * nz)
        iy = (idx // nz) % ny
        iz = idx % nz
        self.node_coords = np.stack([ix, iy, iz], axis=1)

        self.mass = np.zeros(self.num_nodes)
        self.momentum = np.zeros((self.num_nodes, 3))
        self.force = np.zeros((self.num_nodes, 3))

    def reset(self):
        self.mass[:] = 0.0
        self.momentum[:] = 0.0
        self.force[:] = 0.0

    def velocities(self, eps: float = 1e-12) -> np.ndarray:
        m = np.maximum(self.mass, eps)[:, None]
        v = self.momentum / m
        v[self.mass <= eps] = 0.0
        return v

    def interior_margin(self) -> float:
        return self.boundary.thickness * self.spacing


@dataclass
class MPM3DConfig:
    gravity: tuple[float, float, float] = (0.0, 0.0, -9.81)
    flip: float = 0.98
    cfl: float = 0.4
    shape: str = "quadratic"
    dt: float | None = None


class MPM3DSolver:
    """Explicit USL MPM in three dimensions."""

    def __init__(self, grid: Grid3D, particles: Particles3D,
                 material: Material3D, config: MPM3DConfig | None = None,
                 backend=None):
        from ..backend import get_backend
        self.grid = grid
        self.particles = particles
        self.material = material
        self.config = config or MPM3DConfig()
        self.backend = get_backend(backend)
        self.shape = make_shape3d(self.config.shape)
        self._gravity = np.asarray(self.config.gravity, dtype=np.float64)
        self.time = 0.0
        self.step_count = 0

    def stable_dt(self) -> float:
        if self.config.dt is not None:
            return self.config.dt
        c = self.material.wave_speed()
        vmax = float(np.sqrt((self.particles.velocities ** 2)
                             .sum(axis=1)).max(initial=0.0))
        return self.config.cfl * self.grid.spacing / (c + vmax + 1e-12)

    def step(self, dt: float | None = None) -> float:
        p = self.particles
        g = self.grid
        b = self.backend
        xp = b.xp
        dt = float(dt if dt is not None else self.stable_dt())

        kernel = self.shape(p.positions, g.spacing, g.node_dims)
        nodes, w, dw = kernel.nodes, kernel.weights, kernel.grads
        flat = nodes.ravel()

        # --- P2G --------------------------------------------------------
        g.reset()
        mw = p.masses[:, None] * w
        b.index_add(g.mass, flat, mw.ravel())
        mom = mw[:, :, None] * p.velocities[:, None, :]
        b.index_add(g.momentum, flat, mom.reshape(-1, 3))
        f_int = -xp.einsum("p,pab,pkb->pka", p.volumes, p.stresses, dw)
        b.index_add(g.force, flat, f_int.reshape(-1, 3))
        f_ext = mw[:, :, None] * self._gravity
        b.index_add(g.force, flat, f_ext.reshape(-1, 3))

        # --- grid update --------------------------------------------------
        v_old = g.boundary.apply(g, g.velocities())
        m = xp.maximum(g.mass, 1e-12)[:, None]
        v_new = v_old + dt * g.force / m
        v_new[g.mass <= 1e-12] = 0.0
        v_new = g.boundary.apply(g, v_new)

        # --- G2P ----------------------------------------------------------
        v_new_k = v_new[nodes]
        v_old_k = v_old[nodes]
        v_pic = xp.einsum("pk,pkc->pc", w, v_new_k)
        dv = xp.einsum("pk,pkc->pc", w, v_new_k - v_old_k)
        flip = self.config.flip
        p.velocities = (1.0 - flip) * v_pic + flip * (p.velocities + dv)
        p.positions = p.positions + dt * v_pic

        margin = g.interior_margin()
        for axis in range(3):
            np.clip(p.positions[:, axis], margin, g.size[axis] - margin,
                    out=p.positions[:, axis])

        lgrad = xp.einsum("pka,pkb->pab", v_new_k, dw)
        strain_inc = 0.5 * (lgrad + lgrad.transpose(0, 2, 1)) * dt
        spin_inc = 0.5 * (lgrad - lgrad.transpose(0, 2, 1)) * dt
        p.volumes = p.volumes * (1.0 + np.trace(strain_inc, axis1=1, axis2=2))
        p.stresses = self.material.update_stress(p.stresses, strain_inc,
                                                 spin_inc)

        self.time += dt
        self.step_count += 1
        return dt

    def run(self, num_steps: int, dt: float | None = None) -> None:
        for _ in range(num_steps):
            self.step(dt)

    def rollout(self, num_steps: int, record_every: int = 1,
                dt: float | None = None) -> np.ndarray:
        frames = [self.particles.positions.copy()]
        for i in range(num_steps):
            self.step(dt)
            if (i + 1) % record_every == 0:
                frames.append(self.particles.positions.copy())
        return np.stack(frames, axis=0)
