"""3-D Material Point Method — the paper's §7 scaling direction realized.

Same USL architecture as :mod:`repro.mpm`, lifted to three dimensions:
27-node quadratic B-spline transfers, full 3×3 stress tensors, and a
six-face frictional box boundary. The axisymmetric column collapse here
is the experiment the paper's 2-D setup approximates.
"""

from .shape3d import LinearShape3D, QuadraticShape3D, ShapeKernel3D, make_shape3d
from .materials3d import DruckerPrager3D, LinearElastic3D, Material3D
from .solver3d import (
    BoxBoundary3D, Grid3D, MPM3DConfig, MPM3DSolver, Particles3D,
    block_particles,
)
from .scenarios3d import column_collapse_3d, elastic_drop_3d, radial_runout

__all__ = [
    "LinearShape3D", "QuadraticShape3D", "ShapeKernel3D", "make_shape3d",
    "DruckerPrager3D", "LinearElastic3D", "Material3D",
    "BoxBoundary3D", "Grid3D", "MPM3DConfig", "MPM3DSolver", "Particles3D",
    "block_particles",
    "column_collapse_3d", "elastic_drop_3d", "radial_runout",
]
