"""3-D scenarios: axisymmetric granular column collapse and elastic drop."""

from __future__ import annotations

import numpy as np

from .materials3d import DruckerPrager3D, LinearElastic3D
from .solver3d import (
    BoxBoundary3D, Grid3D, MPM3DConfig, MPM3DSolver, block_particles,
)

__all__ = ["column_collapse_3d", "elastic_drop_3d", "radial_runout"]


def column_collapse_3d(
    column_radius: float = 0.15,
    aspect_ratio: float = 1.0,
    friction_angle: float = 30.0,
    domain=(1.0, 1.0, 0.5),
    cells_per_unit: int = 16,
    particles_per_cell: int = 1,
    youngs_modulus: float = 2e6,
):
    """Cylindrical granular column at the domain center collapsing under
    gravity — the axisymmetric experiment (Lube et al. 2004) behind the
    paper's 2-D setup."""
    h = 1.0 / cells_per_unit
    grid = Grid3D(domain, h, BoxBoundary3D(friction=0.35))
    material = DruckerPrager3D(density=1800.0, youngs_modulus=youngs_modulus,
                               poisson_ratio=0.3,
                               friction_angle=friction_angle)
    margin = grid.interior_margin()
    spacing = h / particles_per_cell
    height = aspect_ratio * 2.0 * column_radius
    cx, cy = domain[0] / 2, domain[1] / 2
    block = block_particles(
        (cx - column_radius, cy - column_radius, margin),
        (cx + column_radius, cy + column_radius, margin + height),
        spacing, material.density)
    # carve the cylinder out of the block
    r = np.hypot(block.positions[:, 0] - cx, block.positions[:, 1] - cy)
    keep = r <= column_radius
    particles = type(block)(
        positions=block.positions[keep], velocities=block.velocities[keep],
        masses=block.masses[keep], volumes=block.volumes[keep],
        stresses=block.stresses[keep])
    solver = MPM3DSolver(grid, particles, material, MPM3DConfig())
    meta = dict(column_radius=column_radius, aspect_ratio=aspect_ratio,
                friction_angle=friction_angle, center=(cx, cy),
                base_z=margin)
    return solver, meta


def elastic_drop_3d(domain=(1.0, 1.0, 1.0), cells_per_unit: int = 12,
                    drop_height: float = 0.3, youngs_modulus: float = 5e5):
    """Soft elastic cube dropped onto the floor."""
    h = 1.0 / cells_per_unit
    grid = Grid3D(domain, h, BoxBoundary3D(friction=0.0, mode="slip"))
    material = LinearElastic3D(density=1000.0,
                               youngs_modulus=youngs_modulus,
                               poisson_ratio=0.3)
    margin = grid.interior_margin()
    side = 0.2
    c = domain[0] / 2
    particles = block_particles(
        (c - side / 2, c - side / 2, margin + drop_height),
        (c + side / 2, c + side / 2, margin + drop_height + side),
        h / 2, material.density)
    return MPM3DSolver(grid, particles, material, MPM3DConfig()), \
        dict(drop_height=drop_height, side=side)


def radial_runout(positions: np.ndarray, center: tuple[float, float],
                  initial_radius: float, quantile: float = 0.995) -> float:
    """Radial runout of an axisymmetric collapse: front radius − R0."""
    r = np.hypot(positions[:, 0] - center[0], positions[:, 1] - center[1])
    front = float(np.quantile(r, quantile))
    return max(front - initial_radius, 0.0)
