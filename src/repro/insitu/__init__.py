"""GNS-as-oracle for in-situ visualization (refs [8, 9] of the paper)."""

from .oracle import InSituOracle, OracleReport

__all__ = ["InSituOracle", "OracleReport"]
