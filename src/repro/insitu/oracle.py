"""GNS as an in-situ visualization oracle ("Minority Report", Kumar et
al. 2022 — refs [8, 9] of the paper).

Large simulations cannot afford to render every frame, and scientists
cannot afford to wait for the run to finish to discover it went wrong.
The oracle pattern: while the numerical solver advances, a cheap GNS
periodically *predicts the future* from the current state; the predicted
frames are rendered immediately, giving a live preview many frames ahead
of the physics. When the physics catches up, prediction error is measured
— both a trust signal for the preview and a drift detector for the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gns.simulator import LearnedSimulator
from ..mpm.solver import MPMSolver

__all__ = ["OracleReport", "InSituOracle"]


@dataclass
class OracleReport:
    """One oracle invocation: the preview and (later) its realized error."""

    step: int                          # solver frame index at prediction time
    predicted: np.ndarray              # (horizon+1, n, d) preview frames
    images: list = field(default_factory=list)
    realized_error: np.ndarray | None = None   # (horizon,) once physics catches up


class InSituOracle:
    """Wraps an MPM run with periodic GNS look-ahead previews.

    Parameters
    ----------
    solver, gns:
        The physics solver and a trained surrogate for its scenario.
    horizon:
        Frames to predict ahead at each oracle call.
    every:
        Oracle cadence, in recorded frames.
    substeps:
        Fine MPM steps per recorded frame (the learned frame spacing).
    render:
        When True, rasterize preview frames with :mod:`repro.viz`.
    """

    def __init__(self, solver: MPMSolver, gns: LearnedSimulator,
                 horizon: int = 10, every: int = 5, substeps: int = 4,
                 render: bool = False, resolution: int = 200,
                 material: float | None = None):
        self.solver = solver
        self.gns = gns
        self.horizon = horizon
        self.every = every
        self.substeps = substeps
        self.render = render
        self.resolution = resolution
        self.material = material
        self.reports: list[OracleReport] = []
        self._frames: list[np.ndarray] = [solver.particles.positions.copy()]

    # ------------------------------------------------------------------
    def _bounds(self) -> np.ndarray:
        sx, sy = self.solver.grid.size
        return np.array([[0.0, sx], [0.0, sy]])

    def _advance_one_frame(self) -> None:
        dt = self.solver.stable_dt()
        for _ in range(self.substeps):
            self.solver.step(dt)
        self._frames.append(self.solver.particles.positions.copy())

    def _invoke_oracle(self) -> None:
        c = self.gns.feature_config.history
        if len(self._frames) < c + 1:
            return
        seed = np.stack(self._frames[-(c + 1):], axis=0)
        predicted = self.gns.rollout(seed, self.horizon,
                                     material=self.material)
        report = OracleReport(step=len(self._frames) - 1,
                              predicted=predicted[c:])
        if self.render:
            from ..viz import render_frames

            report.images = render_frames(report.predicted, self._bounds(),
                                          resolution=self.resolution)
        self.reports.append(report)

    def _score_reports(self) -> None:
        """Fill in realized errors for oracle calls the physics has passed."""
        total = len(self._frames)
        for report in self.reports:
            if report.realized_error is not None:
                continue
            available = total - 1 - report.step
            if available < self.horizon:
                continue
            truth = np.stack(
                self._frames[report.step:report.step + self.horizon + 1])
            diff = report.predicted - truth
            report.realized_error = np.linalg.norm(diff, axis=-1).mean(axis=-1)[1:]

    # ------------------------------------------------------------------
    def run(self, num_frames: int) -> list[OracleReport]:
        """Advance the physics ``num_frames`` recorded frames, invoking the
        oracle every ``every`` frames; returns all reports (scored where
        the physics has already caught up with a preview)."""
        for i in range(num_frames):
            self._advance_one_frame()
            if (i + 1) % self.every == 0:
                self._invoke_oracle()
        self._score_reports()
        return self.reports

    def frames(self) -> np.ndarray:
        """All physics frames recorded so far → (T, n, d)."""
        return np.stack(self._frames, axis=0)

    def drift_alerts(self, threshold: float) -> list[int]:
        """Oracle steps whose realized mean error exceeded ``threshold`` —
        the drift-detection signal for hybrid hand-back or retraining."""
        return [r.step for r in self.reports
                if r.realized_error is not None
                and float(r.realized_error.mean()) > threshold]
