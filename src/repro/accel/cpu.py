"""Runtime-compiled fused C kernels for float32 CPU inference.

The float32 fast path (``InferenceEngine(dtype=np.float32)``) spends its
time in two places: BLAS sgemm calls, which are already optimal, and
memory-bound elementwise glue (bias + ReLU, LayerNorm, gather-add,
segment-sum) where NumPy pays one full pass over the array per ufunc.
This module fuses that glue into single-pass C loops, compiled once per
machine with the system ``cc`` through cffi's ABI mode.

Gating and fallback
-------------------
* ``kernels()`` returns a :class:`CpuKernels` handle, or ``None`` when the
  toolchain is unavailable (no compiler, no cffi, sandboxed tmpdir, ...).
  Call sites must treat ``None`` as "use the NumPy path".
* ``REPRO_NO_CKERNELS=1`` disables compilation entirely — the kill switch
  for debugging or reproducing pure-NumPy numbers.
* ``REPRO_BACKEND=numpy`` (the array-backend selector, see
  :mod:`repro.backend`) implies ``REPRO_NO_CKERNELS``: pinning the NumPy
  reference backend is the *one* knob that disables all acceleration.
  Unlike the compile-time kill switch it is checked on every call, so it
  also masks kernels that were already compiled earlier in the process.
* The float64 inference path never dispatches here: its contract is
  bitwise equality with the legacy per-op implementation, which only the
  NumPy kernels guarantee.

Numerics
--------
Two translation units with different flag sets:

* strict IEEE (``relu``/``bias_relu``/``gather2_add_relu``/``segment_sum``):
  plain ``-O3``; ReLU uses ``v > 0 ? v : 0*v`` so NaNs propagate exactly
  like ``np.maximum`` (the ``0*v`` keeps NaN; only the sign of zero can
  differ from NumPy, which compares equal).  The segment sum accumulates
  rows in edge order — the same order as the CSR matmul it replaces.
* reassociation-enabled (``ln``/``bias_ln``): ``-fassociative-math`` and
  friends, required for the compiler to vectorize the float reductions in
  LayerNorm (4x faster than NumPy's multi-pass version).  NaNs still
  propagate (``-ffinite-math-only`` is *not* enabled), but the summation
  order inside a row is unspecified, so results differ from NumPy in the
  last ulp or two.

All kernels require C-contiguous float32 arrays and int64 indices; the
wrappers validate this and raise rather than fall back, because a silent
copy would hide the performance bug the caller is trying to avoid.
"""

# repro-lint: fp32-ok

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile

import numpy as np

__all__ = ["CpuKernels", "available", "kernels"]

_CDEF = """
void repro_relu32(float* h, long long n);
void repro_bias_relu32(float* h, long long n, long long w, const float* bias);
void repro_gather2_add_relu32(float* h, long long e, long long w,
                              const float* ps, const float* pr,
                              const long long* senders,
                              const long long* receivers, int relu);
void repro_segsum32(const float* msgs, long long w, const long long* indptr,
                    long long n, float* out);
void repro_ln32(float* h, long long n, long long w, const float* gamma,
                const float* beta, float eps);
void repro_bias_ln32(float* h, long long n, long long w, const float* bias,
                     const float* gamma, const float* beta, float eps);
"""

# Translation unit 1: strict IEEE semantics (no reassociation). The ReLU
# branches multiply by zero instead of loading a zero constant so that a
# NaN input stays NaN, matching np.maximum(h, 0).
_SRC_STRICT = r"""
#include <stdint.h>

typedef long long i64;

void repro_relu32(float* restrict h, i64 n)
{
    for (i64 i = 0; i < n; i++) {
        float v = h[i];
        h[i] = v > 0.0f ? v : 0.0f * v;
    }
}

void repro_bias_relu32(float* restrict h, i64 n, i64 w,
                       const float* restrict bias)
{
    for (i64 i = 0; i < n; i++) {
        float* row = h + i * w;
        for (i64 j = 0; j < w; j++) {
            float v = row[j] + bias[j];
            row[j] = v > 0.0f ? v : 0.0f * v;
        }
    }
}

void repro_gather2_add_relu32(float* restrict h, i64 e, i64 w,
                              const float* restrict ps,
                              const float* restrict pr,
                              const i64* restrict senders,
                              const i64* restrict receivers, int relu)
{
    for (i64 i = 0; i < e; i++) {
        float* row = h + i * w;
        const float* s = ps + senders[i] * w;
        const float* r = pr + receivers[i] * w;
        if (relu) {
            for (i64 j = 0; j < w; j++) {
                float v = row[j] + s[j] + r[j];
                row[j] = v > 0.0f ? v : 0.0f * v;
            }
        } else {
            /* left-associated like the NumPy reference (h + s) + r */
            for (i64 j = 0; j < w; j++)
                row[j] = row[j] + s[j] + r[j];
        }
    }
}

/* Rows of a segment accumulate in edge order: identical order to the CSR
 * matmul (scipy csr_matrix @ dense walks column indices sequentially per
 * output row), so the result is bitwise-equal to the NumPy plan path. */
void repro_segsum32(const float* restrict msgs, i64 w,
                    const i64* restrict indptr, i64 n, float* restrict out)
{
    for (i64 i = 0; i < n; i++) {
        float* o = out + i * w;
        for (i64 j = 0; j < w; j++)
            o[j] = 0.0f;
        for (i64 k = indptr[i]; k < indptr[i + 1]; k++) {
            const float* m = msgs + k * w;
            for (i64 j = 0; j < w; j++)
                o[j] += m[j];
        }
    }
}
"""

# Translation unit 2: LayerNorm. Compiled with reassociation so the two
# row reductions (mean, variance) vectorize; see the module docstring for
# the numerics contract.
_SRC_LN = r"""
#include <stdint.h>
#include <math.h>

typedef long long i64;

void repro_ln32(float* restrict h, i64 n, i64 w, const float* restrict gamma,
                const float* restrict beta, float eps)
{
    for (i64 i = 0; i < n; i++) {
        float* row = h + i * w;
        float mu = 0.0f;
        for (i64 j = 0; j < w; j++)
            mu += row[j];
        mu /= (float)w;
        float var = 0.0f;
        for (i64 j = 0; j < w; j++) {
            float c = row[j] - mu;
            var += c * c;
        }
        float inv = 1.0f / sqrtf(var / (float)w + eps);
        for (i64 j = 0; j < w; j++)
            row[j] = (row[j] - mu) * inv * gamma[j] + beta[j];
    }
}

void repro_bias_ln32(float* restrict h, i64 n, i64 w,
                     const float* restrict bias, const float* restrict gamma,
                     const float* restrict beta, float eps)
{
    for (i64 i = 0; i < n; i++) {
        float* row = h + i * w;
        float mu = 0.0f;
        for (i64 j = 0; j < w; j++) {
            row[j] += bias[j];
            mu += row[j];
        }
        mu /= (float)w;
        float var = 0.0f;
        for (i64 j = 0; j < w; j++) {
            float c = row[j] - mu;
            var += c * c;
        }
        float inv = 1.0f / sqrtf(var / (float)w + eps);
        for (i64 j = 0; j < w; j++)
            row[j] = (row[j] - mu) * inv * gamma[j] + beta[j];
    }
}
"""

_FLAGS_COMMON = ["-O3", "-march=native", "-fPIC"]
_FLAGS_LN = ["-fno-math-errno", "-fassociative-math", "-fno-signed-zeros",
             "-fno-trapping-math", "-freciprocal-math"]


def _build_dir() -> str:
    override = os.environ.get("REPRO_CKERNEL_CACHE")
    if override:
        os.makedirs(override, exist_ok=True)
        return override
    path = os.path.join(tempfile.gettempdir(),
                        f"repro-ckernels-{os.getuid()}")
    os.makedirs(path, mode=0o700, exist_ok=True)
    return path


def _compile() -> str:
    """Compile both translation units into one shared library; return its
    path. Cached on disk by content hash, so the compiler runs at most
    once per machine per source revision."""
    cc = os.environ.get("CC", "cc")
    tag = hashlib.sha256(
        "\x00".join([_SRC_STRICT, _SRC_LN, cc,
                     " ".join(_FLAGS_COMMON + _FLAGS_LN)]).encode()
    ).hexdigest()[:16]
    build = _build_dir()
    so_path = os.path.join(build, f"repro_ckernels_{tag}.so")
    if os.path.exists(so_path):
        return so_path
    with tempfile.TemporaryDirectory(dir=build) as tmp:
        strict_c = os.path.join(tmp, "strict.c")
        ln_c = os.path.join(tmp, "ln.c")
        with open(strict_c, "w") as fh:
            fh.write(_SRC_STRICT)
        with open(ln_c, "w") as fh:
            fh.write(_SRC_LN)
        strict_o = os.path.join(tmp, "strict.o")
        ln_o = os.path.join(tmp, "ln.o")
        tmp_so = os.path.join(tmp, "out.so")
        for cmd in (
            [cc, *_FLAGS_COMMON, "-c", strict_c, "-o", strict_o],
            [cc, *_FLAGS_COMMON, *_FLAGS_LN, "-c", ln_c, "-o", ln_o],
            [cc, "-shared", strict_o, ln_o, "-o", tmp_so, "-lm"],
        ):
            subprocess.run(cmd, check=True, capture_output=True)
        # atomic publish so concurrent processes never dlopen a partial file
        os.replace(tmp_so, so_path)
    return so_path


class CpuKernels:
    """Thin validating wrappers over the compiled kernels.

    Every method mutates its first argument in place (except
    :meth:`segment_sum`, which fills ``out``). Arrays must be
    C-contiguous float32; index arrays must be int64 (``np.intp`` on all
    supported platforms).
    """

    def __init__(self, ffi, lib):
        self._ffi = ffi
        self._lib = lib

    def _f32(self, a: np.ndarray):
        if a.dtype != np.float32 or not a.flags.c_contiguous:
            raise TypeError("accel kernels need C-contiguous float32 arrays")
        return self._ffi.cast("float *", a.ctypes.data)

    def _i64(self, a: np.ndarray):
        if a.dtype != np.int64 or not a.flags.c_contiguous:
            raise TypeError("accel kernels need C-contiguous int64 indices")
        return self._ffi.cast("long long *", a.ctypes.data)

    def relu(self, h: np.ndarray) -> np.ndarray:
        """In-place ``h = max(h, 0)`` (NaN-propagating)."""
        self._lib.repro_relu32(self._f32(h), h.size)
        return h

    def bias_relu(self, h: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """In-place ``h = max(h + bias, 0)`` over rows."""
        n, w = h.shape
        self._lib.repro_bias_relu32(self._f32(h), n, w, self._f32(bias))
        return h

    def ln(self, h: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
           eps: float) -> np.ndarray:
        """In-place LayerNorm over the last axis."""
        n, w = h.shape
        self._lib.repro_ln32(self._f32(h), n, w, self._f32(gamma),
                             self._f32(beta), eps)
        return h

    def bias_ln(self, h: np.ndarray, bias: np.ndarray, gamma: np.ndarray,
                beta: np.ndarray, eps: float) -> np.ndarray:
        """In-place ``LayerNorm(h + bias)`` over rows."""
        n, w = h.shape
        self._lib.repro_bias_ln32(self._f32(h), n, w, self._f32(bias),
                                  self._f32(gamma), self._f32(beta), eps)
        return h

    def gather2_add_relu(self, h: np.ndarray, proj_s: np.ndarray,
                         proj_r: np.ndarray, senders: np.ndarray,
                         receivers: np.ndarray, relu: bool = True
                         ) -> np.ndarray:
        """In-place ``h += proj_s[senders] + proj_r[receivers]`` with an
        optional fused ReLU — the edge-MLP first layer in one pass."""
        e, w = h.shape
        if proj_s.shape[1] != w or proj_r.shape[1] != w:
            raise ValueError("projection width mismatch")
        self._lib.repro_gather2_add_relu32(
            self._f32(h), e, w, self._f32(proj_s), self._f32(proj_r),
            self._i64(senders), self._i64(receivers), 1 if relu else 0)
        return h

    def segment_sum(self, msgs: np.ndarray, indptr: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
        """``out[i] = msgs[indptr[i]:indptr[i+1]].sum(axis=0)`` — the CSR
        aggregation for receiver-sorted edges, bitwise-equal to the scipy
        matmul path (same accumulation order)."""
        e, w = msgs.shape
        n = out.shape[0]
        if indptr.shape[0] != n + 1 or out.shape[1] != w:
            raise ValueError("segment_sum plan/output shape mismatch")
        if e and int(indptr[-1]) != e:
            raise ValueError("indptr does not cover all edges")
        self._lib.repro_segsum32(self._f32(msgs), w, self._i64(indptr), n,
                                 self._f32(out))
        return out


_KERNELS: CpuKernels | None = None
_TRIED = False


def kernels() -> CpuKernels | None:
    """Compiled kernel handle, or ``None`` when unavailable.

    The first call pays for (cached) compilation; later calls are a
    global read. Failure is remembered — one broken toolchain probe per
    process, not one per forward pass.
    """
    global _KERNELS, _TRIED
    if os.environ.get("REPRO_BACKEND", "").strip().lower() == "numpy":
        # one-knob override: the NumPy reference backend implies
        # REPRO_NO_CKERNELS (checked live, so it masks kernels that
        # were compiled before the variable was set)
        return None
    if _TRIED:
        return _KERNELS
    _TRIED = True
    if os.environ.get("REPRO_NO_CKERNELS"):
        return None
    try:
        import cffi
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(_compile())
        _KERNELS = CpuKernels(ffi, lib)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        # any toolchain failure (no gcc, no cffi, sandboxed tmpdir, bad
        # dlopen) falls back to the numpy path
        _KERNELS = None
    return _KERNELS


def available() -> bool:
    """True when the compiled float32 kernels can be used."""
    return kernels() is not None
