"""Optional CPU acceleration kernels for the float32 inference fast path.

The package compiles a small set of fused elementwise C kernels at runtime
(via cffi + the system C compiler) and exposes them behind a feature gate:
every call site keeps a pure-NumPy fallback, so the kernels are a strict
speed-up, never a requirement.  See :mod:`repro.accel.cpu`.
"""

from .cpu import CpuKernels, available, kernels

__all__ = ["CpuKernels", "available", "kernels"]
