"""GNS training loop.

One-step supervised learning on (history → next-position) windows with
random-walk noise injection; loss is MSE on *normalized* accelerations,
optionally augmented with a momentum-conservation soft constraint (the
paper's "conservation laws as soft constraints").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor
from ..autodiff.functional import mse_loss
from ..data.trajectory import TrainingWindow, Trajectory
from ..nn import Adam, ExponentialDecay, clip_grad_norm
from ..obs import get_registry, span
from .noise import random_walk_noise
from .simulator import LearnedSimulator

__all__ = ["TrainingConfig", "GNSTrainer", "one_step_mse", "rollout_position_error"]


@dataclass
class TrainingConfig:
    """Trainer hyperparameters (paper: lr=1e-4, 20M steps on A100s —
    scaled down to CPU budgets here)."""

    learning_rate: float = 1e-4
    final_learning_rate: float = 1e-6
    decay_steps: int = 100_000
    noise_std: float = 6.7e-4          # GNS default (WaterRamps units)
    batch_size: int = 2
    grad_clip: float = 1.0
    conservation_weight: float = 0.0   # soft momentum-conservation penalty
    #: fuse the batch into one disjoint-union graph so the network runs a
    #: single (large) pass instead of batch_size small ones — same loss,
    #: less per-op Python/dispatch overhead
    fused_batching: bool = False
    #: >0 enables the *pushforward trick* (Brandstetter et al. 2022): the
    #: model rolls this many steps (no grad) from earlier ground truth and
    #: is then supervised from its own slightly-wrong state — an
    #: alternative / complement to noise injection for rollout stability
    pushforward_steps: int = 0
    seed: int = 0
    log_every: int = 100


class GNSTrainer:
    """Minibatch trainer over a pool of training windows."""

    def __init__(self, simulator: LearnedSimulator,
                 trajectories: list[Trajectory],
                 config: TrainingConfig | None = None):
        self.simulator = simulator
        self.config = config or TrainingConfig()
        history = simulator.feature_config.history
        self.windows: list[TrainingWindow] = []
        for traj in trajectories:
            self.windows.extend(traj.windows(
                history, lookback=self.config.pushforward_steps))
        if not self.windows:
            raise ValueError("no training windows — trajectories too short "
                             f"for history={history}")
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(list(simulator.parameters()),
                              lr=self.config.learning_rate)
        self.schedule = ExponentialDecay(
            self.config.learning_rate, self.config.final_learning_rate,
            decay_steps=self.config.decay_steps)
        self.step_count = 0
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _window_history(self, window: TrainingWindow) -> np.ndarray:
        """The (C+1, n, d) input history for a window.

        With pushforward enabled, the trailing frames are the model's own
        no-grad predictions rolled in from the lookback context, so the
        supervised step sees realistic rollout error.
        """
        cfg = self.config
        if not cfg.pushforward_steps or window.lookback_frames is None:
            return window.position_history
        sim = self.simulator
        c = sim.feature_config.history
        s = window.lookback_frames.shape[0]
        all_frames = np.concatenate(
            [window.lookback_frames, window.position_history], axis=0)
        rolled = sim.rollout(all_frames[:c + 1], s, material=window.material,
                             particle_types=window.particle_types)
        # last C+1 frames: ground truth where still inside the seed,
        # model predictions for the final s frames
        return rolled[-(c + 1):]

    def _window_loss(self, window: TrainingWindow) -> Tensor:
        cfg = self.config
        sim = self.simulator
        base = self._window_history(window)
        noise = random_walk_noise(base, cfg.noise_std, self.rng)
        noisy = base + noise

        history = [Tensor(f) for f in noisy]
        pred_norm = sim.predict_normalized_acceleration(
            history, window.material, window.particle_types)

        # target acceleration measured against the *noisy* inputs, so the
        # model learns to correct accumulated rollout error
        x_t, x_prev = noisy[-1], noisy[-2]
        target = window.target_position - 2.0 * x_t + x_prev
        target_norm = sim.featurizer.normalize_acceleration(target)

        static = sim.feature_config.static_mask(window.particle_types)
        if static is not None and static.any():
            # supervise only the dynamic particles (boundary particles are
            # kinematically frozen, so their targets carry no signal)
            dynamic = ~static
            loss = mse_loss(pred_norm[dynamic], target_norm[dynamic])
        else:
            loss = mse_loss(pred_norm, target_norm)
        if cfg.conservation_weight > 0.0:
            # total momentum change of the system must match the target's
            diff = pred_norm.mean(axis=0) - Tensor(target_norm.mean(axis=0))
            loss = loss + cfg.conservation_weight * (diff * diff).sum()
        return loss

    def _fused_batch_loss(self, windows: list[TrainingWindow]) -> Tensor:
        """Mean window loss computed through ONE disjoint-union graph pass.

        Featurization runs per window (so material columns and noise draws
        match the loop path exactly), then node/edge features are
        concatenated with offset connectivity and the network runs once.
        """
        from ..autodiff import concatenate
        from ..graph import Graph

        cfg = self.config
        sim = self.simulator
        node_parts, edge_parts = [], []
        senders_parts, receivers_parts = [], []
        targets, slices, statics = [], [], []
        offset = 0
        for window in windows:
            base = self._window_history(window)
            noise = random_walk_noise(base, cfg.noise_std, self.rng)
            noisy = base + noise
            graph = sim.featurizer.build_graph(
                [Tensor(f) for f in noisy], window.material,
                window.particle_types)
            n = graph.num_nodes
            node_parts.append(graph.node_features)
            edge_parts.append(graph.edge_features)
            senders_parts.append(graph.senders + offset)
            receivers_parts.append(graph.receivers + offset)
            target = window.target_position - 2.0 * noisy[-1] + noisy[-2]
            targets.append(sim.featurizer.normalize_acceleration(target))
            slices.append((offset, offset + n))
            statics.append(sim.feature_config.static_mask(window.particle_types))
            offset += n

        fused = Graph(concatenate(node_parts, axis=0),
                      concatenate(edge_parts, axis=0),
                      np.concatenate(senders_parts),
                      np.concatenate(receivers_parts))
        pred = sim.network(fused)

        total = None
        for (lo, hi), target, static in zip(slices, targets, statics):
            pred_w = pred[lo:hi]
            if static is not None and static.any():
                dyn = ~static
                loss = mse_loss(pred_w[dyn], target[dyn])
            else:
                loss = mse_loss(pred_w, target)
            if cfg.conservation_weight > 0.0:
                diff = pred_w.mean(axis=0) - Tensor(target.mean(axis=0))
                loss = loss + cfg.conservation_weight * (diff * diff).sum()
            total = loss if total is None else total + loss
        return total / float(len(windows))

    def train_step(self) -> float:
        """One optimizer update over a sampled minibatch; returns the loss."""
        cfg = self.config
        idx = self.rng.integers(0, len(self.windows), size=cfg.batch_size)
        self.optimizer.zero_grad()
        with span("train/forward"):
            if cfg.fused_batching:
                total = self._fused_batch_loss(
                    [self.windows[int(i)] for i in idx])
            else:
                total = None
                for i in idx:
                    loss = self._window_loss(self.windows[int(i)])
                    total = loss if total is None else total + loss
                total = total / float(cfg.batch_size)
        with span("train/backward"):
            total.backward()
        with span("train/optimizer"):
            clip_grad_norm(self.optimizer.params, cfg.grad_clip)
            self.schedule.apply(self.optimizer, self.step_count)
            self.optimizer.step()
        self.step_count += 1
        value = float(total.data)
        self.loss_history.append(value)
        reg = get_registry()
        if reg.enabled:
            reg.counter("train.steps").inc()
            reg.series("train.loss").append(self.step_count, value)
            reg.gauge("train.learning_rate").set(self.optimizer.lr)
        return value

    def train(self, num_steps: int, verbose: bool = False) -> list[float]:
        """Run ``num_steps`` updates; returns the loss trace."""
        for _ in range(num_steps):
            loss = self.train_step()
            if verbose and self.step_count % self.config.log_every == 0:
                print(f"step {self.step_count}: loss={loss:.6f}")
        return self.loss_history

    def train_with_validation(self, num_steps: int,
                              val_trajectories: list[Trajectory],
                              eval_every: int = 50,
                              ema_decay: float | None = None,
                              patience: int | None = None,
                              checkpoint_dir=None,
                              max_val_windows: int = 10):
        """Production training loop: periodic validation with optional
        EMA evaluation, early stopping, best-checkpoint retention, and a
        metric log.

        Returns the :class:`~repro.gns.callbacks.MetricLogger` with one
        row per evaluation (columns: step, train_loss, val_mse).
        """
        from .callbacks import (
            CheckpointManager, EarlyStopping, ExponentialMovingAverage,
            MetricLogger,
        )

        ema = (ExponentialMovingAverage(self.simulator, ema_decay)
               if ema_decay is not None else None)
        stopper = EarlyStopping(patience) if patience is not None else None
        manager = (CheckpointManager(checkpoint_dir)
                   if checkpoint_dir is not None else None)
        logger = MetricLogger()

        def validate() -> float:
            total = 0.0
            for traj in val_trajectories:
                total += one_step_mse(self.simulator, traj,
                                      max_windows=max_val_windows)
            return total / max(len(val_trajectories), 1)

        for _ in range(num_steps):
            loss = self.train_step()
            if ema is not None:
                ema.update()
            if self.step_count % eval_every == 0:
                if ema is not None:
                    with ema:
                        val = validate()
                else:
                    val = validate()
                logger.log(step=self.step_count, train_loss=loss, val_mse=val)
                reg = get_registry()
                if reg.enabled:
                    reg.series("train.val_mse").append(self.step_count, val)
                if manager is not None:
                    if ema is not None:
                        with ema:
                            manager.save(self.simulator, self.step_count, val)
                    else:
                        manager.save(self.simulator, self.step_count, val)
                if stopper is not None and stopper.update(val, self.step_count):
                    break
        return logger


# ----------------------------------------------------------------------
# evaluation helpers
# ----------------------------------------------------------------------

def one_step_mse(simulator: LearnedSimulator, trajectory: Trajectory,
                 max_windows: int | None = None) -> float:
    """Mean one-step normalized-acceleration MSE over a trajectory."""
    windows = trajectory.windows(simulator.feature_config.history)
    if max_windows is not None:
        windows = windows[:max_windows]
    from ..autodiff import no_grad

    total = 0.0
    with no_grad():
        for w in windows:
            history = [Tensor(f) for f in w.position_history]
            pred = simulator.predict_normalized_acceleration(history, w.material)
            target = simulator.featurizer.normalize_acceleration(w.target_acceleration())
            total += float(((pred.data - target) ** 2).mean())
    return total / max(len(windows), 1)


def rollout_position_error(predicted: np.ndarray, truth: np.ndarray,
                           normalize_by: float | None = None) -> np.ndarray:
    """Per-frame mean particle position error ‖x̂ − x‖ (optionally divided
    by a domain length scale, giving the paper's '%-of-domain' metric)."""
    t = min(predicted.shape[0], truth.shape[0])
    err = np.linalg.norm(predicted[:t] - truth[:t], axis=-1).mean(axis=-1)
    if normalize_by:
        err = err / normalize_by
    return err
