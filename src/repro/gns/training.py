"""GNS training on windowed-noise batches.

One-step supervised learning on (history → next-position) windows with
random-walk noise injection; loss is MSE on *normalized* accelerations,
optionally augmented with a momentum-conservation soft constraint (the
paper's "conservation laws as soft constraints").

The loop mechanics — grad accumulation, clipping, LR schedule, EMA,
telemetry, and resumable :class:`~repro.train.TrainState` checkpoints —
live in the shared :class:`repro.train.Trainer`; this module only
contributes the GNS-specific sampling and loss (the window/noise/fused
batching logic below).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..autodiff import Tensor
from ..autodiff.functional import mse_loss
from ..data.trajectory import TrainingWindow, Trajectory
from ..nn import Adam
from ..train import ExponentialDecay, Trainer, TrainerOptions
from .noise import random_walk_noise
from .simulator import LearnedSimulator

__all__ = ["TrainingConfig", "GNSTrainer", "one_step_mse", "rollout_position_error"]


@dataclass
class TrainingConfig:
    """Trainer hyperparameters (paper: lr=1e-4, 20M steps on A100s —
    scaled down to CPU budgets here)."""

    learning_rate: float = 1e-4
    final_learning_rate: float = 1e-6
    decay_steps: int = 100_000
    noise_std: float = 6.7e-4          # GNS default (WaterRamps units)
    batch_size: int = 2
    grad_clip: float = 1.0
    conservation_weight: float = 0.0   # soft momentum-conservation penalty
    #: fuse the batch into one disjoint-union graph so the network runs a
    #: single (large) pass instead of batch_size small ones — same loss,
    #: less per-op Python/dispatch overhead
    fused_batching: bool = False
    #: >0 enables the *pushforward trick* (Brandstetter et al. 2022): the
    #: model rolls this many steps (no grad) from earlier ground truth and
    #: is then supervised from its own slightly-wrong state — an
    #: alternative / complement to noise injection for rollout stability
    pushforward_steps: int = 0
    #: micro-batches (each of ``batch_size`` windows) accumulated per
    #: optimizer step — the effective batch is ``batch_size * grad_accum``
    grad_accum: int = 1
    #: decay for EMA shadow weights; ``None`` disables EMA
    ema_decay: float | None = None
    seed: int = 0
    log_every: int = 100


class GNSTrainer(Trainer):
    """Minibatch trainer over a pool of training windows (a thin
    GNS adapter over the shared :class:`repro.train.Trainer`)."""

    def __init__(self, simulator: LearnedSimulator,
                 trajectories: list[Trajectory],
                 config: TrainingConfig | None = None):
        self.simulator = simulator
        self.config = config or TrainingConfig()
        cfg = self.config
        history = simulator.feature_config.history
        self.windows: list[TrainingWindow] = []
        for traj in trajectories:
            self.windows.extend(traj.windows(
                history, lookback=cfg.pushforward_steps))
        if not self.windows:
            raise ValueError("no training windows — trajectories too short "
                             f"for history={history}")
        super().__init__(
            simulator,
            Adam(list(simulator.parameters()), lr=cfg.learning_rate),
            schedule=ExponentialDecay(cfg.learning_rate,
                                      cfg.final_learning_rate,
                                      decay_steps=cfg.decay_steps),
            options=TrainerOptions(grad_accum=cfg.grad_accum,
                                   grad_clip=cfg.grad_clip,
                                   ema_decay=cfg.ema_decay,
                                   seed=cfg.seed,
                                   log_every=cfg.log_every))

    @property
    def step_count(self) -> int:
        """Deprecated alias for :attr:`global_step`."""
        return self.global_step

    # -- task protocol --------------------------------------------------
    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Window indices of one micro-batch."""
        return rng.integers(0, len(self.windows), size=self.config.batch_size)

    def loss(self, batch: np.ndarray, rng: np.random.Generator) -> Tensor:
        """Mean window loss over one sampled micro-batch."""
        cfg = self.config
        windows = [self.windows[int(i)] for i in batch]
        if cfg.fused_batching:
            return self._fused_batch_loss(windows)
        total = None
        for window in windows:
            loss = self._window_loss(window)
            total = loss if total is None else total + loss
        return total / float(len(windows))

    def config_dict(self) -> dict:
        return dict(asdict(self.config), num_windows=len(self.windows))

    # ------------------------------------------------------------------
    def _window_history(self, window: TrainingWindow) -> np.ndarray:
        """The (C+1, n, d) input history for a window.

        With pushforward enabled, the trailing frames are the model's own
        no-grad predictions rolled in from the lookback context, so the
        supervised step sees realistic rollout error.
        """
        cfg = self.config
        if not cfg.pushforward_steps or window.lookback_frames is None:
            return window.position_history
        sim = self.simulator
        c = sim.feature_config.history
        s = window.lookback_frames.shape[0]
        all_frames = np.concatenate(
            [window.lookback_frames, window.position_history], axis=0)
        rolled = sim.rollout(all_frames[:c + 1], s, material=window.material,
                             particle_types=window.particle_types)
        # last C+1 frames: ground truth where still inside the seed,
        # model predictions for the final s frames
        return rolled[-(c + 1):]

    def _window_loss(self, window: TrainingWindow) -> Tensor:
        cfg = self.config
        sim = self.simulator
        base = self._window_history(window)
        noise = random_walk_noise(base, cfg.noise_std, self.rng)
        noisy = base + noise

        history = [Tensor(f) for f in noisy]
        pred_norm = sim.predict_normalized_acceleration(
            history, window.material, window.particle_types)

        # target acceleration measured against the *noisy* inputs, so the
        # model learns to correct accumulated rollout error
        x_t, x_prev = noisy[-1], noisy[-2]
        target = window.target_position - 2.0 * x_t + x_prev
        target_norm = sim.featurizer.normalize_acceleration(target)

        static = sim.feature_config.static_mask(window.particle_types)
        if static is not None and static.any():
            # supervise only the dynamic particles (boundary particles are
            # kinematically frozen, so their targets carry no signal)
            dynamic = ~static
            loss = mse_loss(pred_norm[dynamic], target_norm[dynamic])
        else:
            loss = mse_loss(pred_norm, target_norm)
        if cfg.conservation_weight > 0.0:
            # total momentum change of the system must match the target's
            diff = pred_norm.mean(axis=0) - Tensor(target_norm.mean(axis=0))
            loss = loss + cfg.conservation_weight * (diff * diff).sum()
        return loss

    def _fused_batch_loss(self, windows: list[TrainingWindow]) -> Tensor:
        """Mean window loss computed through ONE disjoint-union graph pass.

        Featurization runs per window (so material columns and noise draws
        match the loop path exactly), then node/edge features are
        concatenated with offset connectivity and the network runs once.
        """
        from ..autodiff import concatenate
        from ..graph import Graph

        cfg = self.config
        sim = self.simulator
        node_parts, edge_parts = [], []
        senders_parts, receivers_parts = [], []
        targets, slices, statics = [], [], []
        offset = 0
        for window in windows:
            base = self._window_history(window)
            noise = random_walk_noise(base, cfg.noise_std, self.rng)
            noisy = base + noise
            graph = sim.featurizer.build_graph(
                [Tensor(f) for f in noisy], window.material,
                window.particle_types)
            n = graph.num_nodes
            node_parts.append(graph.node_features)
            edge_parts.append(graph.edge_features)
            senders_parts.append(graph.senders + offset)
            receivers_parts.append(graph.receivers + offset)
            target = window.target_position - 2.0 * noisy[-1] + noisy[-2]
            targets.append(sim.featurizer.normalize_acceleration(target))
            slices.append((offset, offset + n))
            statics.append(sim.feature_config.static_mask(window.particle_types))
            offset += n

        fused = Graph(concatenate(node_parts, axis=0),
                      concatenate(edge_parts, axis=0),
                      np.concatenate(senders_parts),
                      np.concatenate(receivers_parts))
        pred = sim.network(fused)

        total = None
        for (lo, hi), target, static in zip(slices, targets, statics):
            pred_w = pred[lo:hi]
            if static is not None and static.any():
                dyn = ~static
                loss = mse_loss(pred_w[dyn], target[dyn])
            else:
                loss = mse_loss(pred_w, target)
            if cfg.conservation_weight > 0.0:
                diff = pred_w.mean(axis=0) - Tensor(target.mean(axis=0))
                loss = loss + cfg.conservation_weight * (diff * diff).sum()
            total = loss if total is None else total + loss
        return total / float(len(windows))

    # ------------------------------------------------------------------
    def train_with_validation(self, num_steps: int,
                              val_trajectories: list[Trajectory],
                              eval_every: int = 50,
                              ema_decay: float | None = None,
                              patience: int | None = None,
                              checkpoint_dir=None,
                              max_val_windows: int = 10):
        """Validated training through the shared callback path: periodic
        validation with optional EMA evaluation, early stopping, and
        best-checkpoint retention.

        Returns the :class:`~repro.train.MetricLogger` with one row per
        evaluation (columns: step, train_loss, val_mse).
        """
        from ..train.callbacks import (
            ExponentialMovingAverage, ValidationCallback,
        )

        if ema_decay is not None:
            self.ema = ExponentialMovingAverage(self.simulator, ema_decay)

        def validate(trainer) -> float:
            total = 0.0
            for traj in val_trajectories:
                total += one_step_mse(self.simulator, traj,
                                      max_windows=max_val_windows)
            return total / max(len(val_trajectories), 1)

        callback = ValidationCallback(validate, every=eval_every,
                                      patience=patience,
                                      checkpoint_dir=checkpoint_dir)
        self.fit(num_steps, callbacks=[callback])
        return callback.logger


# ----------------------------------------------------------------------
# evaluation helpers
# ----------------------------------------------------------------------

def one_step_mse(simulator: LearnedSimulator, trajectory: Trajectory,
                 max_windows: int | None = None) -> float:
    """Mean one-step normalized-acceleration MSE over a trajectory."""
    windows = trajectory.windows(simulator.feature_config.history)
    if max_windows is not None:
        windows = windows[:max_windows]
    from ..autodiff import no_grad

    total = 0.0
    with no_grad():
        for w in windows:
            history = [Tensor(f) for f in w.position_history]
            pred = simulator.predict_normalized_acceleration(history, w.material)
            target = simulator.featurizer.normalize_acceleration(w.target_acceleration())
            total += float(((pred.data - target) ** 2).mean())
    return total / max(len(windows), 1)


def rollout_position_error(predicted: np.ndarray, truth: np.ndarray,
                           normalize_by: float | None = None) -> np.ndarray:
    """Per-frame mean particle position error ‖x̂ − x‖ (optionally divided
    by a domain length scale, giving the paper's '%-of-domain' metric)."""
    t = min(predicted.shape[0], truth.shape[0])
    err = np.linalg.norm(predicted[:t] - truth[:t], axis=-1).mean(axis=-1)
    if normalize_by:
        err = err / normalize_by
    return err
