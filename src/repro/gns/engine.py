"""Buffer-reusing rollout engine — the GNS inference fast path.

Per step, the naive rollout rebuilds the radius graph from scratch,
re-allocates every node/edge feature array and every MLP intermediate,
and re-sorts the receiver index for each of the M message-passing
blocks. This engine removes all of that:

* **Verlet-skin neighbor caching** (:class:`repro.graph.NeighborListCache`)
  — the candidate edge list is reused across steps and only rebuilt when
  some particle has moved more than ``skin/2`` since the last build. The
  per-step filter is exact, so edges are bitwise-identical to fresh
  rebuilds.
* **Feature buffers** — node/edge feature matrices live in preallocated
  arrays; step-invariant columns (material, one-hot type) are written
  once per rollout.
* **Fused network kernels with workspace buffers** — see
  :meth:`EncodeProcessDecode.forward_fast`; no edge-sized allocation
  survives into steady state.
* **Per-stage tracing** via :class:`repro.obs.Tracer` spans: graph
  build, feature assembly, encode, process, decode, integrate. Each
  ``rollout()`` opens a fresh *run scope* (a tracer snapshot), so
  :meth:`timings` reports the latest run only — successive rollouts
  never double-count — while the tracer keeps lifetime aggregates for
  telemetry export.
* **Divergence guard** — every produced frame is checked for
  NaN/Inf and (optionally) exploding velocities; a failing step raises
  :class:`repro.obs.RolloutDivergedError` carrying the step index,
  offending particle count, max |v|, and the good frames produced so
  far, instead of rolling out garbage for the remaining steps.

Float64 rollouts are bitwise-identical to the naive
:meth:`LearnedSimulator.step_numpy` loop — the engine runs the same
operations in the same order, just into reused memory.

:meth:`InferenceEngine.rollout_batch` vectorizes over independent
initial conditions by stacking trajectories into one block-diagonal
graph (edges never cross trajectories), which turns B small MLP matmuls
into one B×-taller matmul — the shape the inverse-problem ensemble
needs.
"""
# repro-lint: fp32-ok — float32 inference fast path

from __future__ import annotations

import time

import numpy as np

from ..autodiff.scatter import SortedSegments
from ..backend import get_backend
from ..graph import NeighborListCache
from ..lint.sanitize import active as active_sanitizer
from ..obs import RolloutDivergedError, Tracer
from ..resilience.faults import get_injector
from ..utils.buffers import Workspace

__all__ = ["InferenceEngine"]

_STAGES = ("graph", "features", "encode", "process", "decode", "integrate")

#: edge-count histogram buckets (edges per graph per step)
_EDGE_BUCKETS = (1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6)

#: per-step latency buckets (seconds), 100 µs .. 3 s
_STEP_SECONDS_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                         1e-1, 3e-1, 1.0, 3.0)


class InferenceEngine:
    """Reusable fast-rollout state for one :class:`LearnedSimulator`.

    Parameters
    ----------
    simulator:
        The simulator whose network/featurizer to run. Weights are read
        live (not copied), so an engine stays valid across training
        updates.
    skin:
        Verlet skin radius forwarded to :class:`NeighborListCache`;
        ``None`` uses the cache default (``0.25 × connectivity_radius``),
        ``0.0`` disables caching (rebuild every step — the reference
        path).
    tracer:
        Span recorder for the per-stage breakdown. Defaults to a
        private, *enabled* tracer (stage timing has always been on for
        this engine and costs ~one perf_counter pair per stage per
        step). Pass a disabled :class:`~repro.obs.Tracer` to strip even
        that.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; when set, the
        engine records edges-per-graph histograms and step counters.
    dtype:
        Precision of the network forward pass: ``np.float64`` (default,
        bitwise-equal to the naive path) or ``np.float32`` (the fast
        path: features, encoder, processor and decoder run end-to-end in
        fp32 — weights are cast once and cached). Integration, the
        rollout window and all returned positions stay float64 in both
        modes. ``None`` follows ``simulator.inference_dtype``. Training
        paths must stay float64; this knob exists for inference only.
    backend:
        Array backend name or :class:`~repro.backend.ArrayBackend`
        handle the engine is constructed *on*. ``None`` resolves the
        process-active backend (``REPRO_BACKEND`` / explicit override)
        at construction; an explicit argument wins over the environment.
        Device arrays cross back to the host only at the engine's
        ``to_host`` point (the acceleration denormalization input).
    """

    def __init__(self, simulator, skin: float | None = None,
                 tracer: Tracer | None = None, metrics=None, dtype=None,
                 backend=None):
        self.simulator = simulator
        self.skin = skin
        # resolved once: the engine is pinned to this backend for life,
        # so mid-rollout env flips cannot mix array namespaces
        self.backend = get_backend(backend)
        resolved = np.dtype(dtype if dtype is not None
                            else simulator.inference_dtype)
        if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"InferenceEngine dtype must be float32 or float64, "
                f"got {resolved}")
        self.dtype = resolved
        self.work = Workspace()
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.metrics = metrics
        self._spans = {name: self.tracer.span(name) for name in _STAGES}
        self._run_mark: dict | None = None
        self._cache: NeighborListCache | None = None
        self._batch_caches: list[NeighborListCache] = []

    # ------------------------------------------------------------------
    def _new_cache(self) -> NeighborListCache:
        cfg = self.simulator.feature_config
        return NeighborListCache(cfg.connectivity_radius, skin=self.skin,
                                 method=cfg.neighbor_method)

    @property
    def cache(self) -> NeighborListCache:
        if self._cache is None:
            self._cache = self._new_cache()
        return self._cache

    def cache_stats(self) -> dict:
        stats = self.cache.stats()
        for c in self._batch_caches:
            for key in ("queries", "builds"):
                stats[key] += c.stats()[key]
        if stats["queries"]:
            stats["hit_rate"] = 1.0 - stats["builds"] / stats["queries"]
        return stats

    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Open a fresh timing scope: :meth:`timings` reports spans
        recorded after this point. Called automatically by
        :meth:`rollout` / :meth:`rollout_batch`."""
        self._run_mark = self.tracer.snapshot()

    def reset_timers(self) -> None:
        """Drop all span aggregates (lifetime and run scope)."""
        self.tracer.reset()
        self._run_mark = None

    def timings(self, scope: str | dict = "run") -> dict:
        """Per-stage wall-clock stats as plain dicts.

        ``scope="run"`` (default) covers the most recent
        :meth:`rollout`/:meth:`rollout_batch` call only — the fix for
        the old accumulate-forever double counting. ``scope="lifetime"``
        covers everything since construction/:meth:`reset_timers`; a
        tracer snapshot dict scopes to "since that snapshot".
        """
        if isinstance(scope, dict):
            since = scope
        elif scope == "run":
            since = self._run_mark
        elif scope == "lifetime":
            since = None
        else:
            raise ValueError(f"unknown timing scope: {scope!r}")
        stats = self.tracer.stats(since=since)
        out = {}
        for name in _STAGES:
            s = stats.get(name)
            if s is None:
                out[name] = {"total": 0.0, "count": 0, "mean": 0.0}
            else:
                out[name] = {"total": s["total"], "count": s["count"],
                             "mean": s["mean"]}
        return out

    # ------------------------------------------------------------------
    def _forward(self, window: np.ndarray, node_feats: np.ndarray,
                 senders: np.ndarray, receivers: np.ndarray,
                 plan=None) -> np.ndarray:
        """Features (dynamic columns) → network → denormalized accel.

        Features are assembled directly into the run-dtype buffers (the
        assembly ufuncs write through ``out=``, so the fp32 mode never
        materializes float64 feature arrays); the denormalized
        acceleration is promoted back to float64 for integration.
        """
        sim = self.simulator
        featurizer = sim.featurizer
        x_t = window[-1]
        with self._spans["features"]:
            featurizer.assemble_node_features(window, out=node_feats)
            edge_feats = featurizer.assemble_edge_features(
                x_t, senders, receivers,
                out=self.work.get("feat.edge",
                                  (senders.shape[0],
                                   featurizer.config.edge_feature_size()),
                                  node_feats.dtype))
        acc_norm = sim.network.forward_fast(node_feats, edge_feats, senders,
                                            receivers, work=self.work,
                                            timers=self._spans, plan=plan,
                                            backend=self.backend)
        # the engine's device→host boundary: everything downstream
        # (integration, guards, the rollout window) is host float64
        acc_norm = self.backend.to_host(acc_norm, np.float64)
        return featurizer.denormalize_acceleration(acc_norm)

    @staticmethod
    def _integrate(window: np.ndarray, acc: np.ndarray,
                   static_mask: np.ndarray | None) -> np.ndarray:
        x_t, x_prev = window[-1], window[-2]
        x_next = x_t + (x_t - x_prev + acc)
        if static_mask is not None and static_mask.any():
            x_next = np.where(static_mask[:, None], x_t, x_next)  # lint: ignore[BKD001] — integration is host-side float64 by contract
        return x_next

    @staticmethod
    def _shift_window(window: np.ndarray, x_next: np.ndarray) -> None:
        for i in range(window.shape[0] - 1):
            window[i] = window[i + 1]
        window[-1] = x_next

    @staticmethod
    def _guard_step(step: int, x_t: np.ndarray, x_next: np.ndarray,
                    frames_so_far, max_velocity: float | None) -> None:
        """Abort a diverging rollout with a structured diagnostic.

        One displacement reduction per step (~µs at 1k particles); NaNs
        propagate into ``vmax`` so a single comparison covers both the
        non-finite and the exploding-velocity case. ``frames_so_far``
        may be a callable (evaluated only on failure).
        """
        v = x_next - x_t
        vmax = float(np.max(np.abs(v))) if v.size else 0.0  # lint: ignore[BKD001] — guard runs on host frames after to_host
        if np.isfinite(vmax) and (max_velocity is None
                                  or vmax <= max_velocity):
            return
        speed = np.linalg.norm(v, axis=-1)
        finite = np.isfinite(x_next).all(axis=-1)
        if not np.isfinite(vmax):
            reason = "non-finite positions"
            bad = int((~finite).sum())
        else:
            reason = f"velocity above limit {max_velocity:g}"
            bad = int((speed > max_velocity).sum())
        if callable(frames_so_far):
            frames_so_far = frames_so_far()
        finite_speed = speed[np.isfinite(speed)]
        raise RolloutDivergedError(
            step=step, reason=reason, bad_particles=bad,
            max_velocity=(float(finite_speed.max()) if finite_speed.size
                          else float("nan")),
            frames=np.asarray(frames_so_far).copy())

    @staticmethod
    def _guard_seed(frames: np.ndarray) -> None:
        """Reject a non-finite seed with the same structured error the
        per-step guard raises (otherwise the KD-tree build crashes with
        an opaque ValueError on the first graph query)."""
        if np.isfinite(frames).all():
            return
        bad = int((~np.isfinite(frames).all(axis=(0, -1))
                   if frames.ndim == 3
                   else ~np.isfinite(frames).all(axis=(0, 1, -1))).sum())
        raise RolloutDivergedError(
            step=-1, reason="non-finite seed frames", bad_particles=bad,
            max_velocity=float("nan"), frames=None)

    # ------------------------------------------------------------------
    def rollout(self, initial_history: np.ndarray, num_steps: int,
                material: float | None = None,
                particle_types: np.ndarray | None = None,
                max_velocity: float | None = None,
                guard: bool = True) -> np.ndarray:
        """Fast rollout: ``(C+1+num_steps, n, d)`` positions.

        Bitwise-identical (float64) to the naive per-step path. With
        ``guard`` (default), raises
        :class:`~repro.obs.RolloutDivergedError` the moment a step
        produces NaN/Inf positions or (with ``max_velocity``) a
        per-step displacement above the limit.
        """
        cfg = self.simulator.feature_config
        frames = np.asarray(initial_history, dtype=np.float64)
        window_len = cfg.history + 1
        if frames.shape[0] != window_len:
            raise ValueError(
                f"need {window_len} seed frames, got {frames.shape[0]}")
        if guard:
            self._guard_seed(frames)
        n, dim = frames.shape[1], frames.shape[2]
        out = np.empty((window_len + num_steps, n, dim), dtype=np.float64)
        out[:window_len] = frames
        window = frames.copy()
        static_mask = cfg.static_mask(particle_types)
        node_feats = np.empty((n, cfg.node_feature_size()), dtype=self.dtype)
        self.simulator.featurizer.write_static_columns(node_feats, material,
                                                       particle_types)
        self.begin_run()
        edge_hist = (self.metrics.histogram("gns.edges_per_graph",
                                            buckets=_EDGE_BUCKETS)
                     if self.metrics is not None else None)
        cache = self.cache
        san = active_sanitizer()
        step_hist = (self.metrics.histogram("gns.step_seconds",
                                            buckets=_STEP_SECONDS_BUCKETS)
                     if self.metrics is not None else None)
        for t in range(num_steps):
            t_step = time.perf_counter() if step_hist is not None else 0.0
            with self._spans["graph"]:
                senders, receivers = cache.query(window[-1])
                # receivers come out of the cache already sorted, so the
                # reduction plan shared by all processor blocks is a
                # single searchsorted — no per-block matrix rebuilds
                plan = SortedSegments(receivers, n, backend=self.backend)
            if edge_hist is not None:
                edge_hist.observe(senders.shape[0])
            acc = self._forward(window, node_feats, senders, receivers,
                                plan=plan)
            if san is not None:
                san.check("engine.forward", acc, step=t)
            with self._spans["integrate"]:
                x_next = self._integrate(window, acc, static_mask)
            inj = get_injector()
            if inj.armed and inj.fire("rollout.diverge"):
                # chaos site: one produced frame goes NaN (counter is per
                # rollout step across the process); the guard below must
                # turn it into a structured RolloutDivergedError
                x_next = np.full_like(x_next, np.nan)
            if san is not None:
                # sanitized runs pinpoint the originating op+step before
                # the coarser trajectory guard fires
                san.check("engine.integrate", x_next, step=t)
            if guard:
                self._guard_step(t, window[-1], x_next,
                                 out[:window_len + t], max_velocity)
            with self._spans["integrate"]:
                out[window_len + t] = x_next
                self._shift_window(window, x_next)
            if step_hist is not None:
                # per-step latency distribution: p50/p95/p99 make
                # neighbor-rebuild hiccups visible where a mean cannot
                step_hist.observe(time.perf_counter() - t_step)
        if self.metrics is not None:
            self.metrics.counter("gns.rollout_steps").inc(num_steps)
        return out

    # ------------------------------------------------------------------
    def rollout_batch(self, initial_histories: np.ndarray, num_steps: int,
                      materials=None,
                      particle_types: np.ndarray | None = None,
                      max_velocity: float | None = None,
                      guard: bool = True) -> np.ndarray:
        """Vectorized rollout of B independent initial conditions.

        Parameters
        ----------
        initial_histories:
            ``(B, C+1, n, d)`` seed frames (same particle count per
            trajectory).
        materials:
            Scalar applied to every trajectory, or a length-``B``
            sequence (the inverse-problem ensemble varies the material).
        particle_types:
            ``(n,)`` shared across trajectories, or ``(B, n)``.

        Returns
        -------
        ``(B, C+1+num_steps, n, d)`` positions. Each trajectory matches
        its individual :meth:`rollout` to float64 round-off (the batch
        runs one block-diagonal graph through the same kernels).
        """
        cfg = self.simulator.feature_config
        frames = np.asarray(initial_histories, dtype=np.float64)
        if frames.ndim != 4:
            raise ValueError("initial_histories must be (B, C+1, n, d)")
        b, window_len, n, dim = frames.shape
        if window_len != cfg.history + 1:
            raise ValueError(
                f"need {cfg.history + 1} seed frames, got {window_len}")
        if guard:
            self._guard_seed(frames)

        # stack trajectories into one big particle system (graph stays
        # block-diagonal: each trajectory keeps its own neighbor cache).
        # Explicit copy: for B=1 the transpose+reshape is a *view* of the
        # caller's array (a size-1 axis never breaks C-contiguity, so
        # ascontiguousarray would be a no-op) and _shift_window would
        # mutate the caller's seed frames in place.
        window = np.empty((window_len, b * n, dim), dtype=np.float64)
        np.copyto(window, frames.transpose(1, 0, 2, 3)
                  .reshape(window_len, b * n, dim))
        types_flat = None
        if particle_types is not None:
            types = np.asarray(particle_types)
            types_flat = (np.tile(types, b) if types.ndim == 1
                          else types.reshape(b * n))
        static_mask = cfg.static_mask(types_flat)

        node_feats = np.empty((b * n, cfg.node_feature_size()),
                              dtype=self.dtype)
        featurizer = self.simulator.featurizer
        if np.isscalar(materials) or materials is None:
            featurizer.write_static_columns(node_feats, materials, types_flat)
        else:
            values = np.asarray(materials, dtype=np.float64)
            if values.shape != (b,):
                raise ValueError("materials must be scalar or length B")
            for i in range(b):
                featurizer.write_static_columns(
                    node_feats[i * n:(i + 1) * n], float(values[i]),
                    None if types_flat is None else types_flat[i * n:(i + 1) * n])

        while len(self._batch_caches) < b:
            self._batch_caches.append(self._new_cache())

        self.begin_run()
        out = np.empty((window_len + num_steps, b * n, dim), dtype=np.float64)
        out[:window_len] = window
        offsets = np.arange(b, dtype=np.intp) * n
        san = active_sanitizer()
        for t in range(num_steps):
            with self._spans["graph"]:
                parts_s, parts_r = [], []
                x_t = window[-1]
                for i in range(b):
                    s, r = self._batch_caches[i].query(
                        x_t[i * n:(i + 1) * n])
                    parts_s.append(s + offsets[i])
                    parts_r.append(r + offsets[i])
                senders = np.concatenate(parts_s)  # lint: ignore[BKD001] — edge indices are host-side bookkeeping
                receivers = np.concatenate(parts_r)  # lint: ignore[BKD001] — edge indices are host-side bookkeeping
                # per-trajectory receiver blocks are sorted and offset in
                # increasing order, so the concatenation is sorted too
                plan = SortedSegments(receivers, b * n, backend=self.backend)
            acc = self._forward(window, node_feats, senders, receivers,
                                plan=plan)
            if san is not None:
                san.check("engine.forward", acc, step=t)
            with self._spans["integrate"]:
                x_next = self._integrate(window, acc, static_mask)
            if san is not None:
                san.check("engine.integrate", x_next, step=t)
            if guard:
                self._guard_step(t, window[-1], x_next,
                                 out[:window_len + t], max_velocity)
            with self._spans["integrate"]:
                out[window_len + t] = x_next
                self._shift_window(window, x_next)
        return np.ascontiguousarray(
            out.reshape(window_len + num_steps, b, n, dim).transpose(1, 0, 2, 3))
