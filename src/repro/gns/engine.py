"""Buffer-reusing rollout engine — the GNS inference fast path.

Per step, the naive rollout rebuilds the radius graph from scratch,
re-allocates every node/edge feature array and every MLP intermediate,
and re-sorts the receiver index for each of the M message-passing
blocks. This engine removes all of that:

* **Verlet-skin neighbor caching** (:class:`repro.graph.NeighborListCache`)
  — the candidate edge list is reused across steps and only rebuilt when
  some particle has moved more than ``skin/2`` since the last build. The
  per-step filter is exact, so edges are bitwise-identical to fresh
  rebuilds.
* **Feature buffers** — node/edge feature matrices live in preallocated
  arrays; step-invariant columns (material, one-hot type) are written
  once per rollout.
* **Fused network kernels with workspace buffers** — see
  :meth:`EncodeProcessDecode.forward_fast`; no edge-sized allocation
  survives into steady state.
* **Per-stage timings** via :class:`repro.utils.Timer`: graph build,
  feature assembly, encode, process, decode, integrate.

Float64 rollouts are bitwise-identical to the naive
:meth:`LearnedSimulator.step_numpy` loop — the engine runs the same
operations in the same order, just into reused memory.

:meth:`InferenceEngine.rollout_batch` vectorizes over independent
initial conditions by stacking trajectories into one block-diagonal
graph (edges never cross trajectories), which turns B small MLP matmuls
into one B×-taller matmul — the shape the inverse-problem ensemble
needs.
"""

from __future__ import annotations

import numpy as np

from ..graph import NeighborListCache
from ..utils.buffers import Workspace
from ..utils.timer import Timer

__all__ = ["InferenceEngine"]

_STAGES = ("graph", "features", "encode", "process", "decode", "integrate")


class InferenceEngine:
    """Reusable fast-rollout state for one :class:`LearnedSimulator`.

    Parameters
    ----------
    simulator:
        The simulator whose network/featurizer to run. Weights are read
        live (not copied), so an engine stays valid across training
        updates.
    skin:
        Verlet skin radius forwarded to :class:`NeighborListCache`;
        ``None`` uses the cache default (``0.25 × connectivity_radius``),
        ``0.0`` disables caching (rebuild every step — the reference
        path).
    """

    def __init__(self, simulator, skin: float | None = None):
        self.simulator = simulator
        self.skin = skin
        self.work = Workspace()
        self.timers = {name: Timer() for name in _STAGES}
        self._cache: NeighborListCache | None = None
        self._batch_caches: list[NeighborListCache] = []

    # ------------------------------------------------------------------
    def _new_cache(self) -> NeighborListCache:
        cfg = self.simulator.feature_config
        return NeighborListCache(cfg.connectivity_radius, skin=self.skin,
                                 method=cfg.neighbor_method)

    @property
    def cache(self) -> NeighborListCache:
        if self._cache is None:
            self._cache = self._new_cache()
        return self._cache

    def cache_stats(self) -> dict:
        stats = self.cache.stats()
        for c in self._batch_caches:
            for key in ("queries", "builds"):
                stats[key] += c.stats()[key]
        if stats["queries"]:
            stats["hit_rate"] = 1.0 - stats["builds"] / stats["queries"]
        return stats

    def reset_timers(self) -> None:
        for t in self.timers.values():
            t.reset()

    def timings(self) -> dict:
        """Per-stage wall-clock accumulators as plain dicts."""
        return {name: {"total": t.total, "count": t.count, "mean": t.mean}
                for name, t in self.timers.items()}

    # ------------------------------------------------------------------
    def _forward(self, window: np.ndarray, node_feats: np.ndarray,
                 senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Features (dynamic columns) → network → denormalized accel."""
        sim = self.simulator
        featurizer = sim.featurizer
        x_t = window[-1]
        with self.timers["features"]:
            featurizer.assemble_node_features(window, out=node_feats)
            edge_feats = featurizer.assemble_edge_features(
                x_t, senders, receivers,
                out=self.work.get("feat.edge",
                                  (senders.shape[0],
                                   featurizer.config.edge_feature_size()),
                                  np.float64))
            node_f, edge_f = node_feats, edge_feats
            if sim.inference_dtype != np.float64:
                node_f = node_f.astype(sim.inference_dtype)
                edge_f = edge_f.astype(sim.inference_dtype)
        acc_norm = sim.network.forward_fast(node_f, edge_f, senders,
                                            receivers, work=self.work,
                                            timers=self.timers)
        if acc_norm.dtype != np.float64:
            acc_norm = acc_norm.astype(np.float64)
        return featurizer.denormalize_acceleration(acc_norm)

    @staticmethod
    def _integrate(window: np.ndarray, acc: np.ndarray,
                   static_mask: np.ndarray | None) -> np.ndarray:
        x_t, x_prev = window[-1], window[-2]
        x_next = x_t + (x_t - x_prev + acc)
        if static_mask is not None and static_mask.any():
            x_next = np.where(static_mask[:, None], x_t, x_next)
        return x_next

    @staticmethod
    def _shift_window(window: np.ndarray, x_next: np.ndarray) -> None:
        for i in range(window.shape[0] - 1):
            window[i] = window[i + 1]
        window[-1] = x_next

    # ------------------------------------------------------------------
    def rollout(self, initial_history: np.ndarray, num_steps: int,
                material: float | None = None,
                particle_types: np.ndarray | None = None) -> np.ndarray:
        """Fast rollout: ``(C+1+num_steps, n, d)`` positions.

        Bitwise-identical (float64) to the naive per-step path.
        """
        cfg = self.simulator.feature_config
        frames = np.asarray(initial_history, dtype=np.float64)
        window_len = cfg.history + 1
        if frames.shape[0] != window_len:
            raise ValueError(
                f"need {window_len} seed frames, got {frames.shape[0]}")
        n, dim = frames.shape[1], frames.shape[2]
        out = np.empty((window_len + num_steps, n, dim))
        out[:window_len] = frames
        window = frames.copy()
        static_mask = cfg.static_mask(particle_types)
        node_feats = np.empty((n, cfg.node_feature_size()))
        self.simulator.featurizer.write_static_columns(node_feats, material,
                                                       particle_types)
        cache = self.cache
        for t in range(num_steps):
            with self.timers["graph"]:
                senders, receivers = cache.query(window[-1])
            acc = self._forward(window, node_feats, senders, receivers)
            with self.timers["integrate"]:
                x_next = self._integrate(window, acc, static_mask)
                out[window_len + t] = x_next
                self._shift_window(window, x_next)
        return out

    # ------------------------------------------------------------------
    def rollout_batch(self, initial_histories: np.ndarray, num_steps: int,
                      materials=None,
                      particle_types: np.ndarray | None = None) -> np.ndarray:
        """Vectorized rollout of B independent initial conditions.

        Parameters
        ----------
        initial_histories:
            ``(B, C+1, n, d)`` seed frames (same particle count per
            trajectory).
        materials:
            Scalar applied to every trajectory, or a length-``B``
            sequence (the inverse-problem ensemble varies the material).
        particle_types:
            ``(n,)`` shared across trajectories, or ``(B, n)``.

        Returns
        -------
        ``(B, C+1+num_steps, n, d)`` positions. Each trajectory matches
        its individual :meth:`rollout` to float64 round-off (the batch
        runs one block-diagonal graph through the same kernels).
        """
        cfg = self.simulator.feature_config
        frames = np.asarray(initial_histories, dtype=np.float64)
        if frames.ndim != 4:
            raise ValueError("initial_histories must be (B, C+1, n, d)")
        b, window_len, n, dim = frames.shape
        if window_len != cfg.history + 1:
            raise ValueError(
                f"need {cfg.history + 1} seed frames, got {window_len}")

        # stack trajectories into one big particle system (graph stays
        # block-diagonal: each trajectory keeps its own neighbor cache)
        window = np.ascontiguousarray(
            frames.transpose(1, 0, 2, 3).reshape(window_len, b * n, dim))
        types_flat = None
        if particle_types is not None:
            types = np.asarray(particle_types)
            types_flat = (np.tile(types, b) if types.ndim == 1
                          else types.reshape(b * n))
        static_mask = cfg.static_mask(types_flat)

        node_feats = np.empty((b * n, cfg.node_feature_size()))
        featurizer = self.simulator.featurizer
        if np.isscalar(materials) or materials is None:
            featurizer.write_static_columns(node_feats, materials, types_flat)
        else:
            values = np.asarray(materials, dtype=np.float64)
            if values.shape != (b,):
                raise ValueError("materials must be scalar or length B")
            for i in range(b):
                featurizer.write_static_columns(
                    node_feats[i * n:(i + 1) * n], float(values[i]),
                    None if types_flat is None else types_flat[i * n:(i + 1) * n])

        while len(self._batch_caches) < b:
            self._batch_caches.append(self._new_cache())

        out = np.empty((window_len + num_steps, b * n, dim))
        out[:window_len] = window
        offsets = np.arange(b, dtype=np.intp) * n
        for t in range(num_steps):
            with self.timers["graph"]:
                parts_s, parts_r = [], []
                x_t = window[-1]
                for i in range(b):
                    s, r = self._batch_caches[i].query(
                        x_t[i * n:(i + 1) * n])
                    parts_s.append(s + offsets[i])
                    parts_r.append(r + offsets[i])
                senders = np.concatenate(parts_s)
                receivers = np.concatenate(parts_r)
            acc = self._forward(window, node_feats, senders, receivers)
            with self.timers["integrate"]:
                x_next = self._integrate(window, acc, static_mask)
                out[window_len + t] = x_next
                self._shift_window(window, x_next)
        return np.ascontiguousarray(
            out.reshape(window_len + num_steps, b, n, dim).transpose(1, 0, 2, 3))
