"""Training infrastructure: EMA weights, early stopping, metric logging,
and checkpoint management.

These are the pieces a 20M-step training run (the paper's budget) cannot
live without: exponential moving averages stabilize the final weights,
validation-based early stopping and best-checkpoint retention guard
against overfitting noise, and CSV metric logs make runs auditable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from ..nn import Module

__all__ = ["ExponentialMovingAverage", "EarlyStopping", "MetricLogger",
           "CheckpointManager"]


class ExponentialMovingAverage:
    """Shadow parameters θ̄ ← decay·θ̄ + (1−decay)·θ.

    ``apply_to`` swaps the shadow weights into the module (keeping a
    backup); ``restore`` swaps the training weights back — the standard
    evaluate-with-EMA pattern.
    """

    def __init__(self, module: Module, decay: float = 0.999):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.module = module
        self.decay = decay
        self.shadow = {name: p.data.copy()
                       for name, p in module.named_parameters()}
        self._backup: dict[str, np.ndarray] | None = None

    def update(self) -> None:
        d = self.decay
        for name, p in self.module.named_parameters():
            self.shadow[name] = d * self.shadow[name] + (1.0 - d) * p.data

    def apply_to(self) -> None:
        """Swap EMA weights in (call :meth:`restore` afterwards)."""
        if self._backup is not None:
            raise RuntimeError("EMA weights already applied")
        self._backup = {name: p.data for name, p in
                        self.module.named_parameters()}
        for name, p in self.module.named_parameters():
            p.data = self.shadow[name].copy()

    def restore(self) -> None:
        if self._backup is None:
            raise RuntimeError("no backup to restore")
        for name, p in self.module.named_parameters():
            p.data = self._backup[name]
        self._backup = None

    def __enter__(self):
        self.apply_to()
        return self

    def __exit__(self, *exc):
        self.restore()


class EarlyStopping:
    """Stop when a monitored metric hasn't improved for ``patience`` checks."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.best_step: int | None = None
        self.stale = 0

    def update(self, value: float, step: int | None = None) -> bool:
        """Record a metric; returns True when training should stop."""
        if value < self.best - self.min_delta:
            self.best = value
            self.best_step = step
            self.stale = 0
        else:
            self.stale += 1
        return self.stale >= self.patience


class MetricLogger:
    """Append-only metric rows with CSV persistence."""

    def __init__(self):
        self.rows: list[dict] = []

    def log(self, **metrics) -> None:
        self.rows.append(dict(metrics))

    def column(self, key: str) -> list:
        return [r[key] for r in self.rows if key in r]

    def to_csv(self, path: str | Path) -> None:
        if not self.rows:
            Path(path).write_text("")
            return
        keys: list[str] = []
        for r in self.rows:
            for k in r:
                if k not in keys:
                    keys.append(k)
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=keys)
            writer.writeheader()
            writer.writerows(self.rows)

    @classmethod
    def from_csv(cls, path: str | Path) -> "MetricLogger":
        logger = cls()
        with open(path, newline="") as f:
            for row in csv.DictReader(f):
                parsed = {}
                for k, v in row.items():
                    try:
                        parsed[k] = float(v)
                    except (TypeError, ValueError):
                        parsed[k] = v
                logger.rows.append(parsed)
        return logger


class CheckpointManager:
    """Rolling checkpoints plus a persistent best-by-metric checkpoint.

    Works with any object exposing ``save(path)`` (e.g.
    :class:`~repro.gns.LearnedSimulator`).
    """

    def __init__(self, directory: str | Path, max_to_keep: int = 3):
        if max_to_keep < 1:
            raise ValueError("max_to_keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_to_keep = max_to_keep
        self.best_metric = np.inf
        self._kept: list[Path] = []
        self._index_path = self.directory / "index.json"

    @property
    def best_path(self) -> Path:
        return self.directory / "best.npz"

    def save(self, model, step: int, metric: float | None = None) -> Path:
        """Save a step checkpoint (pruning old ones); update best."""
        path = self.directory / f"step_{step:08d}.npz"
        model.save(path)
        self._kept.append(path)
        while len(self._kept) > self.max_to_keep:
            old = self._kept.pop(0)
            old.unlink(missing_ok=True)
        if metric is not None and metric < self.best_metric:
            self.best_metric = float(metric)
            model.save(self.best_path)
        self._index_path.write_text(json.dumps({
            "kept": [p.name for p in self._kept],
            "best_metric": None if np.isinf(self.best_metric)
                           else self.best_metric,
        }))
        return path

    def latest_path(self) -> Path | None:
        return self._kept[-1] if self._kept else None
