"""Deprecated location — the training callbacks are now shared by every
trainer and live in :mod:`repro.train.callbacks`.

This shim re-exports them so existing imports keep working for one
release; new code should import from ``repro.train``.
"""

from __future__ import annotations

from ..train.callbacks import (
    CheckpointManager, EarlyStopping, ExponentialMovingAverage, MetricLogger,
)

__all__ = ["ExponentialMovingAverage", "EarlyStopping", "MetricLogger",
           "CheckpointManager"]
