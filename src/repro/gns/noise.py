"""Random-walk noise injection for GNS training.

At rollout time the model consumes its own (imperfect) predictions; GNS
makes training robust to that distribution shift by corrupting the input
position history with an accumulating random walk whose per-velocity-step
variance sums to ``noise_std**2`` at the last step (Sanchez-Gonzalez et
al. 2020, §B.1)."""

from __future__ import annotations

import numpy as np

__all__ = ["random_walk_noise"]


def random_walk_noise(position_history: np.ndarray, noise_std: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Accumulating random-walk perturbation for a ``(C+1, n, d)`` history.

    Velocity-space white noise with std ``noise_std / sqrt(C)`` per step is
    cumulatively summed, then integrated once more into position space so
    the *last* frame carries the full ``noise_std`` velocity perturbation.
    The first frame is left unperturbed (it defines the inertial reference).
    """
    c_plus_1, n, d = position_history.shape
    c = c_plus_1 - 1
    if c < 1:
        raise ValueError("history must contain at least two frames")
    if noise_std == 0.0:
        return np.zeros_like(position_history)
    vel_noise = rng.normal(0.0, noise_std / np.sqrt(c), size=(c, n, d))
    vel_noise = np.cumsum(vel_noise, axis=0)
    pos_noise = np.concatenate([np.zeros((1, n, d), dtype=vel_noise.dtype),
                                np.cumsum(vel_noise, axis=0)], axis=0)
    return pos_noise
