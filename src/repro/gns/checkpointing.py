"""Gradient checkpointing for differentiable GNS rollouts.

The paper (§5) reports that reverse-mode AD through a full rollout
"requires extensive memory capacity … not feasible in the currently
available GPU memory (40 GB)", which forces k = 30 steps on CPU. Segment
checkpointing removes that limit: the forward pass stores only the
C+1-frame window at each segment boundary, and the backward pass re-runs
one segment at a time, so peak tape memory is O(segment_length) instead
of O(num_steps) while the gradient stays *exactly* equal to the
full-tape result (recomputation, not approximation).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autodiff import Tensor, no_grad
from .simulator import LearnedSimulator

__all__ = ["checkpointed_rollout_gradient"]


def _run_segment(sim: LearnedSimulator, window: list[Tensor],
                 material: Tensor | None, steps: int) -> list[Tensor]:
    frames = list(window)
    for _ in range(steps):
        frames.append(sim.step(frames[-(sim.feature_config.history + 1):],
                               material))
    return frames


def checkpointed_rollout_gradient(
    simulator: LearnedSimulator,
    initial_history: np.ndarray,
    num_steps: int,
    material: float | None,
    loss_fn: Callable[[Tensor], Tensor],
    segment_length: int = 10,
) -> tuple[float, float | None, np.ndarray]:
    """Loss and gradients of ``loss_fn(final_frame)`` with O(segment) memory.

    Parameters
    ----------
    initial_history: ``(C+1, n, d)`` seed frames.
    num_steps: rollout length (may vastly exceed what a full tape allows).
    material: scalar material parameter (or None when the featurizer does
        not use one).
    loss_fn: maps the final frame Tensor ``(n, d)`` to a scalar Tensor.
    segment_length: steps re-taped per backward segment.

    Returns
    -------
    (loss_value, dloss/dmaterial or None, dloss/dseed ``(C+1, n, d)``)
    """
    if segment_length < 1:
        raise ValueError("segment_length must be >= 1")
    c = simulator.feature_config.history
    window_len = c + 1
    seed = np.asarray(initial_history, dtype=np.float64)
    if seed.shape[0] != window_len:
        raise ValueError(f"initial_history must have {window_len} frames")

    # ------- forward: checkpoint the window at each segment boundary -----
    boundaries: list[np.ndarray] = [seed.copy()]
    segment_steps: list[int] = []
    remaining = num_steps
    window = [seed[i] for i in range(window_len)]
    with no_grad():
        while remaining > 0:
            steps = min(segment_length, remaining)
            frames = _run_segment(simulator,
                                  [Tensor(f) for f in window], None
                                  if material is None else Tensor(np.array(material)),
                                  steps)
            window = [f.data for f in frames[-window_len:]]
            boundaries.append(np.stack(window, axis=0))
            segment_steps.append(steps)
            remaining -= steps

    # ------- backward: re-tape one segment at a time ---------------------
    material_grad = 0.0 if material is not None else None
    lambda_window: list[np.ndarray] | None = None  # adjoint of the window
    loss_value = 0.0

    for seg in range(len(segment_steps) - 1, -1, -1):
        in_frames = [Tensor(boundaries[seg][i].copy(), requires_grad=True)
                     for i in range(window_len)]
        mat_leaf = None if material is None else \
            Tensor(np.array(material), requires_grad=True)
        frames = _run_segment(simulator, in_frames, mat_leaf,
                              segment_steps[seg])
        out_window = frames[-window_len:]

        if seg == len(segment_steps) - 1:
            objective = loss_fn(out_window[-1])
            loss_value = float(objective.data)
        else:
            assert lambda_window is not None
            objective = None
            for frame, lam in zip(out_window, lambda_window):
                if not np.any(lam):
                    continue
                term = (frame * Tensor(lam)).sum()
                objective = term if objective is None else objective + term
            if objective is None:          # zero adjoint: nothing to do
                lambda_window = [np.zeros_like(boundaries[seg][i])
                                 for i in range(window_len)]
                continue
        objective.backward()

        if mat_leaf is not None and mat_leaf.grad is not None:
            material_grad += float(mat_leaf.grad)
        lambda_window = [
            f.grad if f.grad is not None else np.zeros_like(f.data)
            for f in in_frames
        ]

    seed_grad = np.stack(lambda_window, axis=0)
    return loss_value, material_grad, seed_grad
