"""Encode–Process–Decode graph network (Fig 1a of the paper).

* **Encoder** — node and edge MLPs embed raw features into a latent graph.
* **Processor** — M message-passing blocks (interaction networks with
  residual connections); the attention variant weights incoming messages
  with edge-softmax coefficients (the paper's graph-attention extension).
* **Decoder** — node MLP extracting the dynamics (acceleration).
"""
# repro-lint: fp32-ok — float32 inference fast path

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..autodiff import Tensor, concatenate
from ..backend import active as _active_backend
from ..autodiff.fused import (
    edge_mlp_first_layer, fused_edge_mlp, fused_node_mlp, mlp_forward_numpy,
    node_mlp_first_layer, _accel_for, _buf, _mlp_tail, _mlp_tail_accel,
)
from ..autodiff.scatter import (
    SortedSegments, gather, scatter_add, scatter_softmax, segment_sum,
)
from ..graph import Graph
from ..nn import MLP, Module

_NULL_TIMER = contextlib.nullcontext()


def _aggregation_matrix(receivers: np.ndarray, num_edges: int, num_nodes: int,
                        dtype) -> sparse.csr_matrix:
    """Sparse (n × e) one-hot receiver matrix whose matmul is segment-sum.

    When ``receivers`` is sorted (the :func:`repro.graph.radius_graph`
    contract) the CSR structure is written directly — no COO sort — and
    is bitwise-identical to the COO-constructed matrix.
    """
    data = np.ones(num_edges, dtype=dtype)
    indices = np.arange(num_edges, dtype=np.int32)
    if num_edges == 0 or np.all(receivers[:-1] <= receivers[1:]):
        indptr = np.searchsorted(receivers, np.arange(num_nodes + 1)
                                 ).astype(np.int32)
        return sparse.csr_matrix((data, indices, indptr),
                                 shape=(num_nodes, num_edges))
    return sparse.csr_matrix((data, (receivers, indices)),
                             shape=(num_nodes, num_edges))

__all__ = ["GNSNetworkConfig", "InteractionNetwork", "EncodeProcessDecode"]


@dataclass
class GNSNetworkConfig:
    """Architecture hyperparameters.

    The paper follows Sanchez-Gonzalez et al. (2020): latent size 128 and
    10 message-passing steps; defaults here are smaller for CPU-scale
    experiments but fully configurable.
    """

    node_input_size: int = 12
    edge_input_size: int = 3
    output_size: int = 2
    latent_size: int = 64
    mlp_hidden_size: int = 64
    mlp_hidden_layers: int = 2
    message_passing_steps: int = 5
    attention: bool = False

    def _mlp_sizes(self, in_size: int, out_size: int) -> list[int]:
        return [in_size] + [self.mlp_hidden_size] * self.mlp_hidden_layers + [out_size]


class InteractionNetwork(Module):
    """One message-passing block with residual updates.

    Edge update: e' = φ_e([e, v_s, v_r]); node update: v' = φ_v([v, Σ e'])
    where the sum runs over incoming edges. With ``attention=True`` the
    aggregation is an attention-weighted sum: coefficients are an
    edge-softmax over each receiver's incoming edges, computed from the
    same inputs as the edge update (GAT-style).
    """

    def __init__(self, cfg: GNSNetworkConfig, rng: np.random.Generator):
        super().__init__()
        ls = cfg.latent_size
        self.edge_mlp = MLP(cfg._mlp_sizes(3 * ls, ls), rng, layer_norm=True)
        self.node_mlp = MLP(cfg._mlp_sizes(2 * ls, ls), rng, layer_norm=True)
        self.attention = cfg.attention
        if cfg.attention:
            self.attn_mlp = MLP([3 * ls, cfg.mlp_hidden_size, 1], rng)

    def attention_coefficients(self, edge_in: Tensor, receivers: np.ndarray,
                               num_nodes: int,
                               plan: SortedSegments | None = None) -> Tensor:
        """Edge-softmax attention over each receiver's incoming edges."""
        logits = self.attn_mlp(edge_in).reshape(-1)
        return scatter_softmax(logits, receivers, num_nodes, plan=plan)

    def forward(self, nodes: Tensor, edges: Tensor,
                senders: np.ndarray, receivers: np.ndarray,
                collect_attention: list | None = None,
                plan: SortedSegments | None = None
                ) -> tuple[Tensor, Tensor]:
        n = nodes.shape[0]
        if self.attention:
            # attention needs the explicit concatenated edge input for the
            # coefficient MLP, so it keeps the composite-op path
            # the plan indexes by receiver, so only receiver-side ops use it
            vs = gather(nodes, senders)
            vr = gather(nodes, receivers, plan=plan)
            edge_in = concatenate([edges, vs, vr], axis=1)
            messages = self.edge_mlp(edge_in)
            alpha = self.attention_coefficients(edge_in, receivers, n,
                                                plan=plan)
            if collect_attention is not None:
                collect_attention.append(alpha.data.copy())
            weighted = messages * alpha.reshape(-1, 1)
            aggregated = scatter_add(weighted, receivers, n, plan=plan)
            node_update = self.node_mlp(concatenate([nodes, aggregated], axis=1))
            # residual connections stabilize deep message-passing stacks
            return nodes + node_update, edges + messages
        # fused path: one tape node per MLP, split first layers — no
        # edge-sized concat, node-sized sender/receiver projections; the
        # node-side residual folds into the fused node MLP's tape node
        messages = fused_edge_mlp(edges, nodes, senders, receivers,
                                  *self.edge_mlp.fused_params())
        aggregated = scatter_add(messages, receivers, n, plan=plan)
        new_nodes = fused_node_mlp(nodes, aggregated,
                                   *self.node_mlp.fused_params(),
                                   residual=nodes)
        return new_nodes, edges + messages


class EncodeProcessDecode(Module):
    """The full GNS network: graph in → per-node output (acceleration)."""

    def __init__(self, cfg: GNSNetworkConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.cfg = cfg
        ls = cfg.latent_size
        self.node_encoder = MLP(cfg._mlp_sizes(cfg.node_input_size, ls), rng,
                                layer_norm=True)
        self.edge_encoder = MLP(cfg._mlp_sizes(cfg.edge_input_size, ls), rng,
                                layer_norm=True)
        self.blocks = [InteractionNetwork(cfg, rng)
                       for _ in range(cfg.message_passing_steps)]
        self.decoder = MLP(cfg._mlp_sizes(ls, cfg.output_size), rng,
                           layer_norm=False)

    def forward(self, graph: Graph) -> Tensor:
        from ..obs import span
        with span("encode"):
            nodes = self.node_encoder(graph.node_features)
            edges = self.edge_encoder(graph.edge_features)
        with span("process"):
            # one receiver-sorted reduction plan shared by every block
            plan = SortedSegments(graph.receivers, nodes.shape[0])
            for block in self.blocks:
                nodes, edges = block(nodes, edges, graph.senders,
                                     graph.receivers, plan=plan)
        with span("decode"):
            return self.decoder(nodes)

    def forward_with_attention(self, graph: Graph
                               ) -> tuple[Tensor, list[np.ndarray]]:
        """Forward pass that also returns each attention block's per-edge
        coefficients (empty list for non-attention processors)."""
        collected: list[np.ndarray] = []
        nodes = self.node_encoder(graph.node_features)
        edges = self.edge_encoder(graph.edge_features)
        plan = SortedSegments(graph.receivers, nodes.shape[0])
        for block in self.blocks:
            nodes, edges = block(nodes, edges, graph.senders, graph.receivers,
                                 collect_attention=collected, plan=plan)
        return self.decoder(nodes), collected

    def forward_numpy(self, node_features: np.ndarray, edge_features: np.ndarray,
                      senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Tape-free inference: plain-NumPy mirror of :meth:`forward`.

        Used by the fast rollout path (hybrid solver, speedup benchmarks)
        where no gradients are required; numerically identical to the
        Tensor path.
        """
        return self.forward_fast(node_features, edge_features, senders,
                                 receivers)

    def forward_fast(self, node_features: np.ndarray,
                     edge_features: np.ndarray,
                     senders: np.ndarray, receivers: np.ndarray,
                     work=None, timers: dict | None = None,
                     plan: SortedSegments | None = None,
                     backend=None) -> np.ndarray:
        """No-grad forward with optional buffer reuse and stage timing.

        Runs the same fused kernels as the tape path (split first layers,
        in-place LayerNorm, one CSR aggregation matrix shared by every
        block), so float64 results are bitwise-identical to
        :meth:`forward`. With ``work`` (a
        :class:`repro.utils.buffers.Workspace`) every edge/node-sized
        temporary lives in a reusable buffer — the returned array is a
        workspace view, valid until the next call. ``timers`` may map
        ``"encode"/"process"/"decode"`` to accumulating
        :class:`repro.utils.Timer` objects.

        ``plan`` is a :class:`SortedSegments` over ``receivers``; the
        engine builds it once per neighbor-list rebuild so every block of
        every step between rebuilds shares one set of aggregation
        structures (bitwise-identical to the per-call matrix). On float32
        inputs the block loop additionally dispatches to the active
        backend's compiled float32 kernels when available. ``backend``
        pins the array backend (the engine resolves it once at
        construction); ``None`` defers to the process-active backend.
        """
        timers = timers or {}
        getbuf = work.get if work is not None else None
        b = backend if backend is not None else _active_backend()
        xp = b.xp
        dtype = node_features.dtype
        n = node_features.shape[0]
        e = edge_features.shape[0]

        with timers.get("encode", _NULL_TIMER):
            nodes = self.node_encoder.forward_numpy(node_features, getbuf,
                                                    "enc.node", backend=b)
            edges = self.edge_encoder.forward_numpy(edge_features, getbuf,
                                                    "enc.edge", backend=b)

        with timers.get("process", _NULL_TIMER):
            agg_mat = None if plan is not None else \
                _aggregation_matrix(receivers, e, n, dtype)
            kern = _accel_for(nodes, None, b)
            if kern is not None and (senders.dtype != np.int64
                                     or receivers.dtype != np.int64):
                kern = None
            last = len(self.blocks) - 1
            for bi, block in enumerate(self.blocks):
                ews, ebs, egamma, ebeta, eeps = block.edge_mlp.arrays(dtype)
                if block.attention:
                    edge_in = xp.concatenate(
                        [edges, nodes.take(senders, axis=0),
                         nodes.take(receivers, axis=0)], axis=1)
                    messages = block.edge_mlp.forward_numpy(edge_in,
                                                            backend=b)
                    logits = block.attn_mlp.forward_numpy(
                        edge_in, backend=b).ravel()
                    # dtype follows the logits so the fp32 fast path is
                    # not silently promoted back to float64
                    if plan is not None:
                        seg_max = plan.segment_max(logits, empty=-np.inf)
                    else:
                        seg_max = xp.full(n, -np.inf, dtype=logits.dtype)
                        b.index_max(seg_max, receivers, logits)
                    seg_max[~xp.isfinite(seg_max)] = 0.0
                    exp = xp.exp(logits - seg_max[receivers])
                    denom = segment_sum(exp, receivers, n, plan=plan)
                    alpha = exp / denom[receivers]
                    weighted = messages * alpha[:, None]
                    aggregated = plan.segment_sum(weighted) \
                        if plan is not None else segment_sum(weighted,
                                                             receivers, n)
                else:
                    hidden = ews[0].shape[1]
                    h0 = _buf(getbuf, "blk.edge.0", (e, hidden), dtype)
                    if kern is not None and len(ews) > 1:
                        # fp32: single-pass gather+add+ReLU C kernel for
                        # the split first layer, fused bias/LN tail
                        ein = edges.shape[1]
                        width = nodes.shape[1]
                        proj_s = xp.matmul(
                            nodes, ews[0][ein:ein + width],
                            out=_buf(getbuf, "blk.proj_s", (n, hidden), dtype))
                        proj_s += ebs[0]
                        proj_r = xp.matmul(
                            nodes, ews[0][ein + width:],
                            out=_buf(getbuf, "blk.proj_r", (n, hidden), dtype))
                        xp.matmul(edges, ews[0][:ein], out=h0)
                        kern.gather2_add_relu(h0, proj_s, proj_r,
                                              senders, receivers)
                        messages = _mlp_tail_accel(h0, ews, ebs, egamma,
                                                   ebeta, eeps, getbuf,
                                                   "blk.edge", kern,
                                                   activated=True)
                    else:
                        h0 = edge_mlp_first_layer(edges, nodes, senders,
                                                  receivers, ews[0], ebs[0],
                                                  out=h0)
                        messages = _mlp_tail(h0, ews, ebs, egamma, ebeta,
                                             eeps, getbuf=getbuf,
                                             tag="blk.edge", backend=b)
                    if plan is not None:
                        agg_out = _buf(getbuf, "blk.agg",
                                       (n, messages.shape[1]), dtype) \
                            if dtype == np.float32 else None
                        aggregated = plan.segment_sum(messages, out=agg_out)
                    else:
                        aggregated = agg_mat @ messages
                nws, nbs, ngamma, nbeta, neps = block.node_mlp.arrays(dtype)
                if kern is not None and len(nws) > 1 and not block.attention:
                    width = nodes.shape[1]
                    h0 = xp.matmul(nodes, nws[0][:width],
                                   out=_buf(getbuf, "blk.node.0",
                                            (n, nws[0].shape[1]), dtype))
                    h0 += xp.matmul(aggregated, nws[0][width:],
                                    out=_buf(getbuf, "blk.node.agg",
                                             (n, nws[0].shape[1]), dtype))
                    node_update = _mlp_tail_accel(h0, nws, nbs, ngamma,
                                                  nbeta, neps, getbuf,
                                                  "blk.node", kern,
                                                  bias0=nbs[0])
                else:
                    h0 = node_mlp_first_layer(
                        nodes, aggregated, nws[0], nbs[0],
                        out=_buf(getbuf, "blk.node.0", (n, nws[0].shape[1]),
                                 dtype))
                    node_update = _mlp_tail(h0, nws, nbs, ngamma, nbeta, neps,
                                            getbuf=getbuf, tag="blk.node",
                                            backend=b)
                nodes += node_update
                if bi != last:
                    # the final block's edge residual is dead — nothing
                    # downstream reads the edge latents (values identical)
                    edges += messages

        with timers.get("decode", _NULL_TIMER):
            out = self.decoder.forward_numpy(nodes, getbuf, "dec", backend=b)
        return out

    def forward_with_latents(self, graph: Graph) -> tuple[Tensor, list[Tensor]]:
        """Forward pass that also returns each block's edge messages —
        used by the interpretability pipeline (Section 6)."""
        nodes = self.node_encoder(graph.node_features)
        edges = self.edge_encoder(graph.edge_features)
        plan = SortedSegments(graph.receivers, nodes.shape[0])
        message_log: list[Tensor] = []
        for block in self.blocks:
            new_nodes, new_edges = block(nodes, edges, graph.senders,
                                         graph.receivers, plan=plan)
            message_log.append(new_edges - edges)  # the block's raw messages
            nodes, edges = new_nodes, new_edges
        return self.decoder(nodes), message_log
