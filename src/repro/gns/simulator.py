"""The learned simulator: GNS prediction + semi-implicit Euler integration.

Working in displacement units (dt absorbed into the frame spacing):

    v_t     = x_t − x_{t−1}
    a_t     = network(graph(x_{t−C} … x_t))        (denormalized)
    v_{t+1} = v_t + a_t                            (semi-implicit Euler)
    x_{t+1} = x_t + v_{t+1}

Two rollout paths:

* :meth:`rollout` — fast inference (``no_grad``), NumPy in/out; used for
  speedup benchmarks (E2) and the hybrid solver (E4).
* :meth:`rollout_differentiable` — keeps the autodiff tape across steps so
  losses on the final state differentiate back to the *material parameter*
  (and initial conditions); used by the inverse problem (E5). Matches the
  paper's memory-motivated practice of restricting the differentiable pass
  to ~30 steps.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, as_tensor, no_grad
from ..nn import Module
from .features import FeatureConfig, GNSFeaturizer, Stats
from .network import EncodeProcessDecode, GNSNetworkConfig

__all__ = ["LearnedSimulator"]


class LearnedSimulator(Module):
    """End-to-end differentiable particle simulator (GNS)."""

    def __init__(self, feature_config: FeatureConfig,
                 network_config: GNSNetworkConfig | None = None,
                 stats: Stats | None = None,
                 rng: np.random.Generator | None = None,
                 inference_dtype=np.float64):
        super().__init__()
        #: dtype of the tape-free rollout path; float32 ≈ 2× faster on CPU
        self.inference_dtype = inference_dtype
        if network_config is None:
            network_config = GNSNetworkConfig()
        # keep IO sizes consistent with the featurizer
        network_config.node_input_size = feature_config.node_feature_size()
        network_config.edge_input_size = feature_config.edge_feature_size()
        network_config.output_size = feature_config.dim
        self.featurizer = GNSFeaturizer(feature_config, stats)
        self.network = EncodeProcessDecode(network_config, rng)
        self.feature_config = feature_config
        self.network_config = network_config

    @property
    def stats(self) -> Stats:
        return self.featurizer.stats

    # ------------------------------------------------------------------
    def predict_normalized_acceleration(self, position_history: list[Tensor],
                                        material=None,
                                        particle_types=None) -> Tensor:
        """Network output in normalized acceleration space."""
        graph = self.featurizer.build_graph(position_history, material,
                                            particle_types)
        return self.network(graph)

    def step(self, position_history: list[Tensor], material=None,
             particle_types=None) -> Tensor:
        """One integration step; returns ``x_{t+1}`` as a Tensor.

        Particles whose type is listed in ``FeatureConfig.static_types``
        are kinematically frozen (boundary/obstacle particles).
        """
        acc_norm = self.predict_normalized_acceleration(position_history,
                                                        material,
                                                        particle_types)
        acc = self.featurizer.denormalize_acceleration(acc_norm)
        x_t = as_tensor(position_history[-1])
        x_prev = as_tensor(position_history[-2])
        velocity = x_t - x_prev + acc
        x_next = x_t + velocity
        static = self.feature_config.static_mask(particle_types)
        if static is not None and static.any():
            from ..autodiff import where
            x_next = where(static[:, None], x_t, x_next)
        return x_next

    def step_numpy(self, position_history: list[np.ndarray],
                   material: float | None = None,
                   particle_types: np.ndarray | None = None) -> np.ndarray:
        """Tape-free single step (fast inference path)."""
        node_f, edge_f, senders, receivers = self.featurizer.build_arrays(
            position_history, material, particle_types)
        if self.inference_dtype != np.float64:
            node_f = node_f.astype(self.inference_dtype)
            edge_f = edge_f.astype(self.inference_dtype)
        acc_norm = self.network.forward_numpy(node_f, edge_f, senders,
                                              receivers).astype(np.float64)
        acc = self.featurizer.denormalize_acceleration(acc_norm)
        x_t, x_prev = position_history[-1], position_history[-2]
        x_next = x_t + (x_t - x_prev + acc)
        static = self.feature_config.static_mask(particle_types)
        if static is not None and static.any():
            x_next = np.where(static[:, None], x_t, x_next)
        return x_next

    # ------------------------------------------------------------------
    def engine(self, skin: float | None = None, dtype=None, backend=None):
        """The lazily-created :class:`~repro.gns.engine.InferenceEngine`
        for this simulator (buffers, neighbor cache, stage timers persist
        across rollouts). A ``skin``, ``dtype`` or ``backend`` differing
        from the current engine's rebuilds it (``dtype=None`` follows
        ``inference_dtype``; ``backend=None`` follows the process-active
        backend, re-resolved per call so env changes take effect)."""
        from ..backend import get_backend
        want = np.dtype(dtype if dtype is not None else self.inference_dtype)
        want_backend = get_backend(backend)
        eng = getattr(self, "_engine", None)
        if (eng is None or eng.skin != skin or eng.dtype != want
                or eng.backend is not want_backend):
            from .engine import InferenceEngine
            eng = InferenceEngine(self, skin=skin, dtype=want,
                                  backend=want_backend)
            object.__setattr__(self, "_engine", eng)
        return eng

    def rollout(self, initial_history: np.ndarray, num_steps: int,
                material: float | None = None,
                particle_types: np.ndarray | None = None,
                fast: bool = True, skin: float | None = None,
                max_velocity: float | None = None,
                guard: bool = True, dtype=None, backend=None) -> np.ndarray:
        """Fast inference rollout (tape-free NumPy path).

        Parameters
        ----------
        initial_history: ``(C+1, n, d)`` seed positions (e.g. the MPM
            warm-up frames).
        num_steps: prediction steps beyond the seed.
        fast: route through the buffer-reusing :meth:`engine` with Verlet
            neighbor caching (float64 results bitwise-identical to the
            naive path); ``False`` falls back to the per-step
            :meth:`step_numpy` loop.
        skin: Verlet skin radius for the fast path (None → 0.25 R).
        max_velocity: optional per-step displacement limit for the
            divergence guard.
        guard: abort early with a structured
            :class:`~repro.obs.RolloutDivergedError` (step index,
            offending particle count, max |v|, good frames so far) the
            moment a step produces NaN/Inf positions, instead of rolling
            out garbage for the remaining steps.
        dtype: run the network in this dtype (float32 trades ~1e-4
            relative accuracy for speed; None follows
            ``inference_dtype``). Fast path only.
        backend: array backend name or handle for the network forward
            (None follows ``REPRO_BACKEND`` / the explicit process
            override). Fast path only.

        Returns
        -------
        ``(C+1+num_steps, n, d)`` positions including the seed frames.
        """
        if fast:
            return self.engine(skin, dtype=dtype, backend=backend).rollout(
                initial_history, num_steps, material, particle_types,
                max_velocity=max_velocity, guard=guard)
        if dtype is not None and np.dtype(dtype) != np.dtype(self.inference_dtype):
            raise ValueError("dtype override requires fast=True")
        if backend is not None:
            raise ValueError("backend override requires fast=True")
        from .engine import InferenceEngine

        frames = [np.asarray(f, dtype=np.float64) for f in initial_history]
        if guard:
            InferenceEngine._guard_seed(np.stack(frames, axis=0))
        window_len = self.feature_config.history + 1
        for t in range(num_steps):
            x_next = self.step_numpy(frames[-window_len:], material,
                                     particle_types)
            if guard:
                InferenceEngine._guard_step(
                    t, frames[-1], x_next,
                    lambda: np.stack(frames, axis=0), max_velocity)
            frames.append(x_next)
        return np.stack(frames, axis=0)

    def rollout_batch(self, initial_histories: np.ndarray, num_steps: int,
                      materials=None,
                      particle_types: np.ndarray | None = None,
                      skin: float | None = None,
                      max_velocity: float | None = None,
                      guard: bool = True, dtype=None,
                      backend=None) -> np.ndarray:
        """Batched multi-initial-condition rollout via the fast engine;
        see :meth:`repro.gns.engine.InferenceEngine.rollout_batch`."""
        return self.engine(skin, dtype=dtype, backend=backend).rollout_batch(
            initial_histories, num_steps, materials, particle_types,
            max_velocity=max_velocity, guard=guard)

    def rollout_differentiable(self, initial_history: list[Tensor],
                               num_steps: int, material=None,
                               particle_types: np.ndarray | None = None
                               ) -> list[Tensor]:
        """Tape-preserving rollout; returns all frames as Tensors.

        Gradients of any function of the returned frames propagate to
        ``material`` and the seed frames.
        """
        frames = [as_tensor(f) for f in initial_history]
        for _ in range(num_steps):
            window = frames[-(self.feature_config.history + 1):]
            frames.append(self.step(window, material, particle_types))
        return frames

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        from ..data.io import save_checkpoint

        extra = {
            "feature_config": {
                "connectivity_radius": self.feature_config.connectivity_radius,
                "history": self.feature_config.history,
                "use_material": self.feature_config.use_material,
                "material_scale": self.feature_config.material_scale,
                "dim": self.feature_config.dim,
                "num_particle_types": self.feature_config.num_particle_types,
                "static_types": list(self.feature_config.static_types),
                "bounds": None if self.feature_config.bounds is None
                          else np.asarray(self.feature_config.bounds).tolist(),
            },
            "network_config": vars(self.network_config),
            "stats": {k: v.tolist() for k, v in self.stats.to_dict().items()},
        }
        save_checkpoint(path, self.state_dict(), extra)

    @classmethod
    def load(cls, path) -> "LearnedSimulator":
        from ..data.io import load_checkpoint

        state, extra = load_checkpoint(path)
        fc = extra["feature_config"]
        bounds = None if fc["bounds"] is None else np.asarray(fc["bounds"])
        feature_config = FeatureConfig(
            connectivity_radius=fc["connectivity_radius"], history=fc["history"],
            bounds=bounds, use_material=fc["use_material"],
            material_scale=fc["material_scale"], dim=fc["dim"],
            num_particle_types=fc.get("num_particle_types", 1),
            static_types=tuple(fc.get("static_types", ())))
        nc = dict(extra["network_config"])
        network_config = GNSNetworkConfig(**nc)
        stats = Stats.from_dict({k: np.asarray(v) for k, v in extra["stats"].items()})
        sim = cls(feature_config, network_config, stats)
        sim.load_state_dict(state)
        return sim
