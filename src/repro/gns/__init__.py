"""Graph Network Simulator — the paper's primary contribution.

Encode–Process–Decode GNS with attention option, physics-inspired
inductive biases, differentiable rollouts, and training utilities.
"""

from .features import FeatureConfig, GNSFeaturizer, Stats
from .network import EncodeProcessDecode, GNSNetworkConfig, InteractionNetwork
from .engine import InferenceEngine
from .noise import random_walk_noise
from .simulator import LearnedSimulator
from .checkpointing import checkpointed_rollout_gradient
from .callbacks import (
    CheckpointManager, EarlyStopping, ExponentialMovingAverage, MetricLogger,
)
from .training import GNSTrainer, TrainingConfig, one_step_mse, rollout_position_error

__all__ = [
    "FeatureConfig", "GNSFeaturizer", "Stats",
    "EncodeProcessDecode", "GNSNetworkConfig", "InteractionNetwork",
    "random_walk_noise",
    "InferenceEngine", "LearnedSimulator", "checkpointed_rollout_gradient",
    "GNSTrainer", "TrainingConfig", "one_step_mse", "rollout_position_error",
    "CheckpointManager", "EarlyStopping", "ExponentialMovingAverage",
    "MetricLogger",
]
