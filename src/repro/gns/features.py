"""Differentiable feature construction for GNS.

Node features (the paper's physics-inspired inductive biases):

* C most recent finite-difference **velocities**, normalized by dataset
  statistics — the *inertial frame* bias: the network only ever sees
  velocity differences, so constant gravity is learned as a constant
  acceleration bias instead of a position-dependent function.
* Clipped, radius-normalized **distances to each boundary wall** — local
  boundary awareness without global coordinates.
* Optional scalar **material feature** (normalized friction angle φ).
  Because the whole pipeline is differentiable, ∂(rollout)/∂φ exists —
  the key enabler of the Section 5 inverse problem.

Edge features: relative displacement (x_s − x_r)/R and its norm — again
translation-invariant by construction.

All features are built with autodiff ops from position Tensors, so
gradients flow from rollout losses back to positions and material.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor, as_tensor, concatenate
from ..autodiff.compile import compile_tape
from ..autodiff.functional import norm
from ..autodiff.scatter import gather
from ..graph import Graph, radius_graph

__all__ = ["FeatureConfig", "GNSFeaturizer", "Stats"]


@dataclass
class Stats:
    """Dataset normalization statistics (displacement units)."""

    velocity_mean: np.ndarray
    velocity_std: np.ndarray
    acceleration_mean: np.ndarray
    acceleration_std: np.ndarray

    @classmethod
    def from_dict(cls, d: dict) -> "Stats":
        return cls(
            velocity_mean=np.asarray(d["velocity_mean"], dtype=np.float64),
            velocity_std=np.asarray(d["velocity_std"], dtype=np.float64),
            acceleration_mean=np.asarray(d["acceleration_mean"], dtype=np.float64),
            acceleration_std=np.asarray(d["acceleration_std"], dtype=np.float64),
        )

    @classmethod
    def unit(cls, dim: int = 2) -> "Stats":
        z, o = np.zeros(dim, dtype=np.float64), np.ones(dim, dtype=np.float64)
        return cls(z.copy(), o.copy(), z.copy(), o.copy())

    def to_dict(self) -> dict:
        return {
            "velocity_mean": self.velocity_mean, "velocity_std": self.velocity_std,
            "acceleration_mean": self.acceleration_mean,
            "acceleration_std": self.acceleration_std,
        }


@dataclass
class FeatureConfig:
    """Featurizer configuration.

    Attributes
    ----------
    connectivity_radius: R — neighbor search radius and length normalizer.
    history: C — number of velocity steps in node features (paper: 5).
    bounds: ``(d, 2)`` wall coordinates, or None to skip boundary features.
    use_material: append the normalized material scalar to node features.
    material_scale: divisor normalizing the material value (φ in degrees).
    """

    connectivity_radius: float = 0.1
    history: int = 5
    bounds: np.ndarray | None = None
    use_material: bool = False
    material_scale: float = 45.0
    neighbor_method: str = "kdtree"
    dim: int = 2
    #: >1 enables a per-particle one-hot type feature (GNS convention:
    #: type 0 = dynamic, others are boundary/obstacle kinds)
    num_particle_types: int = 1
    #: type ids treated as kinematically fixed during integration
    static_types: tuple = ()

    def node_feature_size(self) -> int:
        n = self.history * self.dim
        if self.bounds is not None:
            n += 2 * self.dim
        if self.use_material:
            n += 1
        if self.num_particle_types > 1:
            n += self.num_particle_types
        return n

    def one_hot_types(self, particle_types: np.ndarray) -> np.ndarray:
        types = np.asarray(particle_types, dtype=np.int64)
        if types.min() < 0 or types.max() >= self.num_particle_types:
            raise ValueError("particle type out of range")
        out = np.zeros((types.shape[0], self.num_particle_types),
                       dtype=np.float64)
        out[np.arange(types.shape[0]), types] = 1.0
        return out

    def static_mask(self, particle_types: np.ndarray | None) -> np.ndarray | None:
        if particle_types is None or not self.static_types:
            return None
        types = np.asarray(particle_types)
        return np.isin(types, np.asarray(self.static_types))

    def edge_feature_size(self) -> int:
        return self.dim + 1


class GNSFeaturizer:
    """Builds the differentiable input graph for one prediction step."""

    def __init__(self, config: FeatureConfig, stats: Stats | None = None):
        self.config = config
        self.stats = stats or Stats.unit(config.dim)
        self._chains = None
        self._chain_key = None

    def _compiled_chains(self) -> dict:
        """Fused elementwise tape chains for the feature pipeline.

        Each chain replaces 2–3 separate tape nodes with a single fused
        node (one VJP closure, no intermediate Tensors) while computing
        the exact same ufunc sequence, so results stay bitwise-identical
        to the unfused ops. Constants (stats arrays, bounds, radius) are
        baked in by reference at trace time; the cache is keyed on their
        identities so rebinding ``self.stats`` retraces.
        """
        s, cfg = self.stats, self.config
        key = (id(s.velocity_mean), id(s.velocity_std),
               id(s.acceleration_mean), id(s.acceleration_std),
               id(cfg.bounds), cfg.connectivity_radius)
        if self._chains is not None and self._chain_key == key:
            return self._chains
        R = cfg.connectivity_radius
        vmean, vstd = s.velocity_mean, s.velocity_std
        amean, astd = s.acceleration_mean, s.acceleration_std
        chains = {
            "velocity": compile_tape(
                lambda cur, prev: (cur - prev - vmean) / vstd,
                name="feat.velocity"),
            "rel": compile_tape(lambda xs, xr: (xs - xr) / R,
                                name="feat.rel"),
            "norm_acc": compile_tape(lambda a: (a - amean) / astd,
                                     name="feat.norm_acc"),
            "denorm_acc": compile_tape(lambda a: a * astd + amean,
                                       name="feat.denorm_acc"),
        }
        if cfg.bounds is not None:
            lower, upper = cfg.bounds[:, 0], cfg.bounds[:, 1]
            chains["dist_lower"] = compile_tape(
                lambda x: ((x - lower) / R).clip(0.0, 1.0),
                name="feat.dist_lower")
            chains["dist_upper"] = compile_tape(
                lambda x: ((upper - x) / R).clip(0.0, 1.0),
                name="feat.dist_upper")
        self._chains = chains
        self._chain_key = key
        return chains

    def build_graph(self, position_history: list[Tensor],
                    material: Tensor | float | None = None,
                    particle_types: np.ndarray | None = None) -> Graph:
        """Construct the input graph from ``C+1`` position frames.

        Parameters
        ----------
        position_history:
            list of ``(n, d)`` Tensors (or arrays), oldest first; length
            must be ``config.history + 1``.
        material:
            scalar material value (Tensor to make it differentiable).
        """
        cfg = self.config
        if len(position_history) != cfg.history + 1:
            raise ValueError(
                f"need {cfg.history + 1} position frames, got {len(position_history)}")
        frames = [as_tensor(p) for p in position_history]
        x_t = frames[-1]
        n = x_t.shape[0]

        # --- connectivity (non-differentiable structure) ----------------
        senders, receivers = radius_graph(
            x_t.data, cfg.connectivity_radius, method=cfg.neighbor_method)

        # --- node features ----------------------------------------------
        # compiled elementwise chains: one fused tape node per feature
        # block instead of one per ufunc (bitwise-identical results)
        chains = self._compiled_chains()
        feats = []
        for prev, cur in zip(frames[:-1], frames[1:]):
            feats.append(chains["velocity"](cur, prev))
        if cfg.bounds is not None:
            feats.extend([chains["dist_lower"](x_t),
                          chains["dist_upper"](x_t)])
        if cfg.use_material:
            if material is None:
                raise ValueError("featurizer configured with use_material but none given")
            m = as_tensor(material)
            col = (m / cfg.material_scale).reshape(1, 1) * Tensor(
                np.ones((n, 1), dtype=np.float64))
            feats.append(col)
        if cfg.num_particle_types > 1:
            if particle_types is None:
                raise ValueError("featurizer configured with particle types "
                                 "but none given")
            feats.append(Tensor(cfg.one_hot_types(particle_types)))
        node_features = concatenate(feats, axis=1)

        # --- edge features ------------------------------------------------
        xs = gather(x_t, senders)
        xr = gather(x_t, receivers)
        rel = chains["rel"](xs, xr)
        dist = norm(rel, axis=1, keepdims=True)
        edge_features = concatenate([rel, dist], axis=1)

        return Graph(node_features, edge_features, senders, receivers)

    def build_arrays(self, position_history: list[np.ndarray],
                     material: float | None = None,
                     particle_types: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Tape-free mirror of :meth:`build_graph` for fast inference.

        Returns ``(node_features, edge_features, senders, receivers)`` as
        plain arrays, numerically identical to the Tensor path.
        """
        cfg = self.config
        if len(position_history) != cfg.history + 1:
            raise ValueError(
                f"need {cfg.history + 1} position frames, got {len(position_history)}")
        frames = [np.asarray(p, dtype=np.float64) for p in position_history]
        x_t = frames[-1]

        senders, receivers = radius_graph(
            x_t, cfg.connectivity_radius, method=cfg.neighbor_method)

        node_features = self.assemble_node_features(frames)
        self.write_static_columns(node_features, material, particle_types)
        edge_features = self.assemble_edge_features(x_t, senders, receivers)
        return node_features, edge_features, senders, receivers

    # -- buffer-reusing assembly (shared by build_arrays and the
    # -- inference engine, so both produce bitwise-identical features) --
    def assemble_node_features(self, frames, out: np.ndarray | None = None
                               ) -> np.ndarray:
        """Write the *dynamic* node-feature columns (velocity history and
        boundary distances) of the ``(n, F)`` feature matrix.

        ``frames`` is a ``(C+1, n, d)`` array or list of frames, oldest
        first. Static columns (material, one-hot type) are left untouched
        — see :meth:`write_static_columns`.
        """
        cfg = self.config
        x_t = frames[-1]
        n = x_t.shape[0]
        if out is None:
            out = np.empty((n, cfg.node_feature_size()), dtype=np.float64)
        col = 0
        vmean, vstd = self.stats.velocity_mean, self.stats.velocity_std
        for prev, cur in zip(frames[:-1], frames[1:]):
            v = out[:, col:col + cfg.dim]
            np.subtract(cur, prev, out=v)
            v -= vmean
            v /= vstd
            col += cfg.dim
        if cfg.bounds is not None:
            lower, upper = cfg.bounds[:, 0], cfg.bounds[:, 1]
            b = out[:, col:col + cfg.dim]
            np.subtract(x_t, lower, out=b)
            b /= cfg.connectivity_radius
            np.clip(b, 0.0, 1.0, out=b)
            col += cfg.dim
            b = out[:, col:col + cfg.dim]
            np.subtract(upper, x_t, out=b)
            b /= cfg.connectivity_radius
            np.clip(b, 0.0, 1.0, out=b)
        return out

    def write_static_columns(self, out: np.ndarray,
                             material: float | None = None,
                             particle_types: np.ndarray | None = None) -> None:
        """Fill the step-invariant trailing columns (material, one-hot
        particle type). The engine writes these once per rollout."""
        cfg = self.config
        col = out.shape[1]
        if cfg.num_particle_types > 1:
            if particle_types is None:
                raise ValueError("featurizer configured with particle types "
                                 "but none given")
            col -= cfg.num_particle_types
            out[:, col:] = cfg.one_hot_types(particle_types)
        if cfg.use_material:
            if material is None:
                raise ValueError("featurizer configured with use_material but none given")
            value = float(material.data if isinstance(material, Tensor) else material)
            col -= 1
            out[:, col] = value / cfg.material_scale

    def assemble_edge_features(self, x_t: np.ndarray, senders: np.ndarray,
                               receivers: np.ndarray,
                               out: np.ndarray | None = None) -> np.ndarray:
        """Relative displacement and distance edge features into ``out``."""
        cfg = self.config
        if out is None:
            out = np.empty((senders.shape[0], cfg.edge_feature_size()),
                           dtype=np.float64)
        rel = out[:, :cfg.dim]
        np.subtract(x_t.take(senders, axis=0), x_t.take(receivers, axis=0),
                    out=rel)
        rel /= cfg.connectivity_radius
        dist2 = np.einsum("ij,ij->i", rel, rel)
        dist2 += 1e-12
        np.sqrt(dist2, out=dist2)
        out[:, cfg.dim] = dist2
        return out

    # ------------------------------------------------------------------
    def normalize_acceleration(self, acc):
        """(a − μ)/σ with dataset statistics (works on Tensor or ndarray)."""
        if isinstance(acc, Tensor):
            return self._compiled_chains()["norm_acc"](acc)
        return (acc - self.stats.acceleration_mean) / self.stats.acceleration_std

    def denormalize_acceleration(self, acc_norm):
        """Inverse of :meth:`normalize_acceleration`."""
        if isinstance(acc_norm, Tensor):
            return self._compiled_chains()["denorm_acc"](acc_norm)
        return acc_norm * self.stats.acceleration_std + self.stats.acceleration_mean
