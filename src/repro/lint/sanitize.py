"""Opt-in runtime sanitizers: catch NaNs, dtype promotion, shape drift
at the op that caused them.

The static rules in :mod:`repro.lint.rules` guard what the AST can see;
this layer guards what it cannot — values. Armed via the environment::

    REPRO_SANITIZE=nan          # non-finite outputs
    REPRO_SANITIZE=nan,dtype    # + silent dtype changes per site
    REPRO_SANITIZE=all          # nan + dtype + shape drift

Two hook points:

* **Tape dispatch** — :func:`install` registers a hook with
  :func:`repro.autodiff.tensor.set_tape_hook`; every ``Tensor._make``
  (all primitive and fused tape ops) passes its freshly computed output
  through :meth:`Sanitizer.check_tape`, which derives the op site from
  the VJP closure's qualname (``Tensor.__mul__``, ``fused_edge_mlp``).
* **Engine rollout** — :class:`repro.gns.engine.InferenceEngine` checks
  the per-step acceleration and integrated positions, so a no-grad fast
  path failure is pinned to its step and stage.

A failing check raises :class:`SanitizerError` naming the site, the
issue, and (where known) the rollout step — instead of NaNs surfacing
hundreds of steps later as a diverged trajectory.

Cost discipline: when ``REPRO_SANITIZE`` is unset, :func:`active`
returns ``None`` and instrumented code pays a single ``is None`` branch
— checks never run, never allocate, and never touch the arrays, so an
unsanitized run is bitwise-identical to an uninstrumented one.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["Sanitizer", "SanitizerError", "active", "install", "uninstall",
           "SANITIZE_ENV", "parse_modes"]

SANITIZE_ENV = "REPRO_SANITIZE"
MODES = ("nan", "shape", "dtype")


class SanitizerError(RuntimeError):
    """A sanitized op produced a value that violates an invariant."""

    def __init__(self, site: str, issue: str, detail: str,
                 step: int | None = None):
        self.site = site
        self.issue = issue
        self.step = step
        at = f" (step {step})" if step is not None else ""
        super().__init__(f"[{issue}] at op '{site}'{at}: {detail}")


def parse_modes(spec: str) -> frozenset[str]:
    """``"nan,dtype"`` → modes; ``"all"`` enables everything."""
    modes: set[str] = set()
    for token in spec.replace(";", ",").split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token == "all":
            modes.update(MODES)
        elif token in MODES:
            modes.add(token)
        else:
            raise ValueError(
                f"unknown sanitize mode {token!r} (expected one of "
                f"{', '.join(MODES)} or 'all')")
    return frozenset(modes)


class Sanitizer:
    """Per-site value checks. ``shape``/``dtype`` modes remember the
    first shape/dtype seen at each site and flag any later change —
    drift at a fixed op site is exactly what a silent promotion or a
    ragged rebuild looks like."""

    def __init__(self, modes: frozenset[str]):
        self.modes = frozenset(modes)
        self._check_nan = "nan" in self.modes
        self._check_shape = "shape" in self.modes
        self._check_dtype = "dtype" in self.modes
        self._shapes: dict[str, tuple] = {}
        self._dtypes: dict[str, np.dtype] = {}
        self.checks = 0

    def reset(self) -> None:
        """Forget remembered shapes/dtypes (between independent runs)."""
        self._shapes.clear()
        self._dtypes.clear()
        self.checks = 0

    # ------------------------------------------------------------------
    def check(self, site: str, value: np.ndarray,
              step: int | None = None) -> None:
        """Validate one op output; raises :class:`SanitizerError`."""
        self.checks += 1
        arr = np.asarray(value)
        if self._check_nan and np.issubdtype(arr.dtype, np.floating):
            if not np.isfinite(arr).all():
                bad = int((~np.isfinite(arr)).sum())
                raise SanitizerError(
                    site, "nan", f"{bad}/{arr.size} non-finite element(s), "
                    f"shape {arr.shape}", step=step)
        if self._check_dtype:
            seen = self._dtypes.get(site)
            if seen is None:
                self._dtypes[site] = arr.dtype
            elif seen != arr.dtype:
                raise SanitizerError(
                    site, "dtype", f"dtype changed {seen} -> {arr.dtype} "
                    f"(silent promotion?)", step=step)
        if self._check_shape:
            seen_shape = self._shapes.get(site)
            if seen_shape is None:
                self._shapes[site] = arr.shape
            elif seen_shape != arr.shape:
                raise SanitizerError(
                    site, "shape", f"shape drifted {seen_shape} -> "
                    f"{arr.shape}", step=step)

    def check_tape(self, data: np.ndarray, backward_fn) -> None:
        """Tape-dispatch hook: derive the op site from the VJP closure
        (``Tensor.__mul__.<locals>.backward`` → ``Tensor.__mul__``)."""
        qual = getattr(backward_fn, "__qualname__", "tape_op")
        site, _, _ = qual.partition(".<locals>")
        self.check(site, data)


# ----------------------------------------------------------------------
# process-global sanitizer (armed from REPRO_SANITIZE or install())
# ----------------------------------------------------------------------
_ACTIVE: Sanitizer | None = None
_ENV_CHECKED = False


def active() -> Sanitizer | None:
    """The armed process sanitizer, or ``None`` (the common, free case).
    On first access arms itself from ``REPRO_SANITIZE`` if set."""
    global _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get(SANITIZE_ENV)
        if spec:
            install(parse_modes(spec))
    return _ACTIVE


def install(modes: frozenset[str] | str) -> Sanitizer:
    """Arm the sanitizer programmatically and hook tape dispatch."""
    global _ACTIVE, _ENV_CHECKED
    if isinstance(modes, str):
        modes = parse_modes(modes)
    _ENV_CHECKED = True
    _ACTIVE = Sanitizer(frozenset(modes))
    from ..autodiff import tensor as _tensor

    _tensor.set_tape_hook(_ACTIVE.check_tape)
    return _ACTIVE


def uninstall() -> None:
    """Disarm: drop the sanitizer and unhook tape dispatch."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    _ACTIVE = None
    from ..autodiff import tensor as _tensor

    _tensor.set_tape_hook(None)
