"""The domain rule catalog (see ``docs/static-analysis.md``).

Determinism (DET)
    DET001  legacy NumPy global-state RNG (``np.random.seed`` & friends)
    DET002  stdlib ``random`` module in library code
    DET003  wall-clock time used as a seed
    DET004  ``np.random.default_rng()`` with no seed (OS entropy)

Dtype discipline (DTY)
    DTY001  array constructor without explicit ``dtype=`` in hot modules
    DTY002  float32 outside the declared fp32 allowlist

Autodiff contracts (ADF)
    ADF001  tape op registered without a local VJP closure
    ADF002  differentiable kernel without a gradcheck cross-reference

Conventions (CNV)
    CNV001  telemetry metric/span naming (+ cross-file kind consistency)
    CNV002  fault-site string not in ``resilience.faults.KNOWN_SITES``
    CNV003  broad exception handler that can swallow KeyboardInterrupt

Backend dispatch (BKD)
    BKD001  raw ``np.`` hot-path call in a backend-dispatched module

Every rule yields violations anchored to the offending line so a
``# lint: ignore[ID] — reason`` suppression sits next to the code it
justifies.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import LintConfig, SourceFile, rule

__all__: list[str] = []

# legacy np.random.* functions that mutate or read hidden global state
LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "binomial", "poisson", "exponential", "beta",
    "gamma", "get_state", "set_state",
})

# np.random attributes that are explicitly fine (the Generator API)
GENERATOR_API = frozenset({"default_rng", "Generator", "SeedSequence",
                           "PCG64", "BitGenerator", "Philox", "SFC64"})

TIME_SOURCES = frozenset({"time", "time_ns", "perf_counter",
                          "perf_counter_ns", "monotonic", "monotonic_ns"})

SEED_SINKS = frozenset({"seed", "default_rng", "SeedSequence", "spawn_rngs",
                        "seed_everything", "make_rng", "arm", "arm_faults"})

CONSTRUCTORS_NEEDING_DTYPE = frozenset({"empty", "zeros", "ones", "full"})

METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "series"})
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
SPAN_NAME_RE = re.compile(r"^[a-z0-9_]+([/.][a-z0-9_]+)*$")

FAULT_METHODS = frozenset({"fire", "raise_if"})

# array-namespace functions the backend registry dispatches: a raw np.*
# call to one of these inside a backend-dispatched module bypasses the
# seam and would silently stay on the host under a device backend
BACKEND_DISPATCHED = frozenset({
    "exp", "log", "sqrt", "tanh", "sin", "cos", "where", "clip",
    "matmul", "einsum", "outer", "maximum", "minimum", "concatenate",
    "stack", "split", "bincount", "sign", "abs", "dot",
})

# ufunc `.at` scatter calls with a dedicated backend primitive
BACKEND_SCATTER_AT = {"add": "index_add", "maximum": "index_max"}

# modules refactored to dispatch through repro.backend: everything under
# autodiff/ plus the specific gns/nn hot files (engine, network, mlp)
BACKEND_HOT_FILES = ("nn/mlp.py", "gns/network.py", "gns/engine.py")


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.seed`` -> ``["np", "random", "seed"]`` (or [])."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_numpy_root(name: str) -> bool:
    return name in ("np", "numpy")


def _loc(node: ast.AST) -> tuple[int, int]:
    return node.lineno, node.col_offset


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# DET — determinism
# ----------------------------------------------------------------------

@rule("DET001", "numpy-global-rng")
def det001(source: SourceFile, config: LintConfig):
    """Legacy ``np.random.*`` calls draw from (or mutate) NumPy's hidden
    global state, so two call sites silently couple their streams and a
    resumed run cannot replay them. Route RNG through an explicit
    ``np.random.Generator`` from :mod:`repro.utils.seeding`."""
    for call in _walk_calls(source.tree):
        chain = _attr_chain(call.func)
        if (len(chain) == 3 and _is_numpy_root(chain[0])
                and chain[1] == "random" and chain[2] in LEGACY_NP_RANDOM):
            yield (*_loc(call), f"legacy global-state RNG "
                   f"'{'.'.join(chain)}' — use an explicit Generator from "
                   f"repro.utils.seeding")


@rule("DET002", "stdlib-random")
def det002(source: SourceFile, config: LintConfig):
    """The stdlib ``random`` module is a process-global PRNG with no
    place in seeded numerical code; nothing downstream can replay it."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    yield (*_loc(node), "stdlib 'random' import — use "
                           "numpy Generators from repro.utils.seeding")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield (*_loc(node), "stdlib 'random' import — use "
                       "numpy Generators from repro.utils.seeding")


@rule("DET003", "time-seed")
def det003(source: SourceFile, config: LintConfig):
    """Seeding from the wall clock makes every run unrepeatable —
    the exact failure mode the bitwise kill-and-resume tests exist to
    prevent."""
    for call in _walk_calls(source.tree):
        chain = _attr_chain(call.func)
        if not chain or chain[-1] not in SEED_SINKS:
            continue
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            if isinstance(arg, ast.Call):
                sub = _attr_chain(arg.func)
                if sub and sub[-1] in TIME_SOURCES and (
                        len(sub) == 1 or sub[0] == "time"):
                    yield (*_loc(call), f"seed derived from wall clock "
                           f"('{'.'.join(sub)}') — pass an explicit seed")


@rule("DET004", "unseeded-generator")
def det004(source: SourceFile, config: LintConfig):
    """``np.random.default_rng()`` with no arguments pulls OS entropy;
    the resulting stream can never be replayed. Always pass a seed or a
    spawned ``SeedSequence``."""
    for call in _walk_calls(source.tree):
        chain = _attr_chain(call.func)
        if not chain or chain[-1] != "default_rng":
            continue
        if len(chain) == 3 and not (_is_numpy_root(chain[0])
                                    and chain[1] == "random"):
            continue
        if not call.args and not call.keywords:
            yield (*_loc(call), "default_rng() without a seed draws OS "
                   "entropy — pass a seed or SeedSequence")


# ----------------------------------------------------------------------
# DTY — dtype discipline
# ----------------------------------------------------------------------

def _in_hot_module(rel: str, config: LintConfig) -> bool:
    parts = rel.replace("\\", "/").split("/")
    return any(hot in parts for hot in config.hot_modules)


@rule("DTY001", "constructor-dtype")
def dty001(source: SourceFile, config: LintConfig):
    """In the hot modules every allocation states its dtype. Implicit
    float64 is *today's* default; under the planned fp32 inference mode
    and pluggable backends an unannotated constructor is where silent
    promotion starts."""
    if not _in_hot_module(source.rel, config):
        return
    for call in _walk_calls(source.tree):
        chain = _attr_chain(call.func)
        if (len(chain) == 2 and _is_numpy_root(chain[0])
                and chain[1] in CONSTRUCTORS_NEEDING_DTYPE
                and not _has_kwarg(call, "dtype")):
            yield (*_loc(call), f"np.{chain[1]} without explicit dtype= in "
                   f"a hot module — state the dtype (float64 unless in the "
                   f"fp32 allowlist)")


@rule("DTY002", "float32-outside-allowlist")
def dty002(source: SourceFile, config: LintConfig):
    """float32 is allowed only where the fp32 inference mode declares it
    (file pragma ``# repro-lint: fp32-ok`` or the config allowlist);
    anywhere else it silently halves precision of f64-bitwise paths."""
    if "fp32-ok" in source.pragmas:
        return
    if any(source.rel.endswith(sfx) for sfx in config.fp32_allowlist):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute) and node.attr in ("float32",
                                                             "single"):
            chain = _attr_chain(node)
            if chain and _is_numpy_root(chain[0]):
                yield (*_loc(node), "float32 outside the fp32 allowlist — "
                       "add '# repro-lint: fp32-ok' if this file is part "
                       "of the fp32 inference mode")
        elif (isinstance(node, ast.Constant) and node.value == "float32"):
            yield (*_loc(node), "float32 dtype string outside the fp32 "
                   "allowlist")


# ----------------------------------------------------------------------
# ADF — autodiff contracts
# ----------------------------------------------------------------------

def _is_make_call(call: ast.Call) -> bool:
    chain = _attr_chain(call.func)
    return bool(chain) and chain[-1] == "_make"


def _local_defs(fn: ast.AST) -> set[str]:
    names = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


@rule("ADF001", "vjp-complete", scope="project")
def adf001(sources, ref_sources, config: LintConfig):
    """Every tape op registered through ``Tensor._make`` must pass a VJP
    closure defined in the same scope. A missing or dangling backward
    argument means a primitive exists whose gradient silently never
    flows — the inverse problem would converge to garbage."""
    for source in sources:
        if "autodiff" not in source.rel.replace("\\", "/").split("/"):
            continue
        for fn in ast.walk(source.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local = _local_defs(fn)
            for call in _walk_calls(fn):
                if not _is_make_call(call):
                    continue
                backward_arg = None
                if len(call.args) >= 3:
                    backward_arg = call.args[2]
                else:
                    for kw in call.keywords:
                        if kw.arg == "backward_fn":
                            backward_arg = kw.value
                if backward_arg is None:
                    yield (source, *_loc(call),
                           "tape op registered without a VJP argument")
                elif isinstance(backward_arg, ast.Name):
                    if backward_arg.id not in local:
                        yield (source, *_loc(call),
                               f"VJP '{backward_arg.id}' is not defined in "
                               f"the registering scope")
                # Lambda / attribute VJPs are accepted as-is


def _tape_op_names(sources) -> dict[str, tuple[SourceFile, int]]:
    """Public differentiable kernels in fused.py / scatter.py: functions
    that register a tape node directly, or that call one that does."""
    direct: dict[str, tuple[SourceFile, int]] = {}
    composed: dict[str, tuple[SourceFile, int, set[str]]] = {}
    for source in sources:
        rel = source.rel.replace("\\", "/")
        if not (rel.endswith("autodiff/fused.py")
                or rel.endswith("autodiff/scatter.py")):
            continue
        for fn in source.tree.body:
            if not isinstance(fn, ast.FunctionDef) or fn.name.startswith("_"):
                continue
            calls = {(_attr_chain(c.func) or ["?"])[-1]
                     for c in _walk_calls(fn)}
            if "_make" in calls or "backward" in _local_defs(fn):
                direct[fn.name] = (source, fn.lineno)
            else:
                composed[fn.name] = (source, fn.lineno, calls)
    for name, (source, lineno, calls) in composed.items():
        if calls & set(direct):
            direct[name] = (source, lineno)
    return direct


@rule("ADF002", "gradcheck-coverage", scope="project")
def adf002(sources, ref_sources, config: LintConfig):
    """Every differentiable kernel in ``autodiff/fused.py`` and
    ``autodiff/scatter.py`` must be exercised by at least one test
    (static cross-reference against the test corpus): hand-written VJPs
    are exactly the gradients nothing else double-checks."""
    kernels = _tape_op_names(sources)
    if not kernels:
        return
    referenced: set[str] = set()
    for ref in ref_sources:
        if ref.tree is None:
            continue
        for node in ast.walk(ref.tree):
            if isinstance(node, ast.Name):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)
    for name, (source, lineno) in sorted(kernels.items()):
        if name not in referenced:
            yield (source, lineno, 0,
                   f"differentiable kernel '{name}' has no gradcheck "
                   f"cross-reference in the test corpus")


# ----------------------------------------------------------------------
# CNV — conventions
# ----------------------------------------------------------------------

@rule("CNV001", "telemetry-naming", scope="project")
def cnv001(sources, ref_sources, config: LintConfig):
    """Metric names are lowercase dotted paths (``pool.respawns``),
    span names lowercase slash/dot paths (``mpm/p2g``); one name must
    keep one metric kind everywhere, or the telemetry summary would
    merge incompatible payloads."""
    kinds: dict[str, tuple[str, SourceFile, int]] = {}
    for source in sources:
        for call in _walk_calls(source.tree):
            chain = _attr_chain(call.func)
            if not chain:
                continue
            method = chain[-1]
            if not call.args or not isinstance(call.args[0], ast.Constant):
                continue
            name = call.args[0].value
            if not isinstance(name, str):
                continue
            if method in METRIC_METHODS and len(chain) >= 2:
                if not METRIC_NAME_RE.match(name):
                    yield (source, *_loc(call),
                           f"metric name '{name}' is not a lowercase "
                           f"dotted path (e.g. 'pool.respawns')")
                    continue
                prev = kinds.get(name)
                if prev is None:
                    kinds[name] = (method, source, call.lineno)
                elif prev[0] != method:
                    yield (source, *_loc(call),
                           f"metric '{name}' registered as {method} here "
                           f"but as {prev[0]} at {prev[1].rel}:{prev[2]}")
            elif method == "span":
                if not SPAN_NAME_RE.match(name):
                    yield (source, *_loc(call),
                           f"span name '{name}' is not a lowercase "
                           f"slash path (e.g. 'mpm/p2g')")


def _known_fault_sites(sources) -> set[str] | None:
    for source in sources:
        if not source.rel.replace("\\", "/").endswith("resilience/faults.py"):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "KNOWN_SITES" not in targets:
                continue
            sites = set()
            for const in ast.walk(node.value):
                if isinstance(const, ast.Constant) and isinstance(const.value,
                                                                  str):
                    sites.add(const.value)
            return sites
    return None


@rule("CNV002", "fault-site-exists", scope="project")
def cnv002(sources, ref_sources, config: LintConfig):
    """Fault-site strings passed to ``fire()``/``raise_if()`` must exist
    in ``resilience.faults.KNOWN_SITES`` — a typo'd site is a chaos test
    that silently never fires."""
    known = _known_fault_sites(sources)
    if known is None:
        return  # corpus does not include the faults module
    for source in sources:
        for call in _walk_calls(source.tree):
            chain = _attr_chain(call.func)
            if not chain or chain[-1] not in FAULT_METHODS or len(chain) < 2:
                continue
            if not call.args or not isinstance(call.args[0], ast.Constant):
                continue
            site = call.args[0].value
            if isinstance(site, str) and site not in known:
                yield (source, *_loc(call),
                       f"fault site '{site}' is not declared in "
                       f"resilience.faults.KNOWN_SITES")


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _catches(handler: ast.ExceptHandler, names: set[str]) -> bool:
    t = handler.type
    types = t.elts if isinstance(t, ast.Tuple) else [t] if t else []
    for node in types:
        chain = _attr_chain(node)
        if chain and chain[-1] in names:
            return True
    return False


# ----------------------------------------------------------------------
# BKD — backend dispatch
# ----------------------------------------------------------------------

def _backend_dispatched_file(rel: str) -> bool:
    rel = rel.replace("\\", "/")
    parts = rel.split("/")
    # the backend package itself is the NumPy implementation, not a caller
    if "backend" in parts:
        return False
    if "autodiff" in parts:
        return True
    return any(rel.endswith(sfx) for sfx in BACKEND_HOT_FILES)


@rule("BKD001", "backend-dispatch")
def bkd001(source: SourceFile, config: LintConfig):
    """Hot modules refactored onto the array-backend registry must route
    dispatched operations through the active backend (``xp =
    active_xp()`` / a pinned handle), not call ``np.*`` directly — a raw
    call silently stays on the host under a device backend and splits
    the forward/backward namespaces. The NumPy reference kernels
    themselves opt out with ``# repro-lint: backend-kernels``; host-only
    code (guards, IO, index bookkeeping) uses a targeted
    ``# lint: ignore[BKD001]``."""
    if "backend-kernels" in source.pragmas:
        return
    if not _backend_dispatched_file(source.rel):
        return
    for call in _walk_calls(source.tree):
        chain = _attr_chain(call.func)
        if not chain or not _is_numpy_root(chain[0]):
            continue
        if len(chain) == 2 and chain[1] in BACKEND_DISPATCHED:
            yield (*_loc(call), f"raw np.{chain[1]} in a backend-dispatched "
                   f"module — use the active backend's namespace "
                   f"(xp.{chain[1]}) or a pinned backend handle")
        elif (len(chain) == 3 and chain[2] == "at"
                and chain[1] in BACKEND_SCATTER_AT):
            yield (*_loc(call), f"raw np.{chain[1]}.at in a "
                   f"backend-dispatched module — use the backend's "
                   f"{BACKEND_SCATTER_AT[chain[1]]} primitive")


@rule("CNV003", "broad-except")
def cnv003(source: SourceFile, config: LintConfig):
    """A ``except Exception:`` that neither re-raises nor sits behind an
    explicit ``except (KeyboardInterrupt, SystemExit): raise`` handler
    swallows Ctrl-C in worker loops; a bare ``except:`` additionally
    eats SystemExit. Catch the specific failures the call site can
    actually produce."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Try):
            continue
        shielded = False
        for handler in node.handlers:
            if handler.type is None:
                yield (*_loc(handler), "bare 'except:' — name the "
                       "exception types this site can produce")
                continue
            if _catches(handler, {"KeyboardInterrupt", "SystemExit"}):
                if _handler_reraises(handler):
                    shielded = True
                continue
            if _catches(handler, {"Exception", "BaseException"}):
                if _handler_reraises(handler) or shielded:
                    continue
                yield (*_loc(handler), "broad 'except Exception' without "
                       "re-raise — narrow the types or add a preceding "
                       "'except (KeyboardInterrupt, SystemExit): raise'")
