"""Domain-aware static analysis + runtime sanitizers.

Static side (``repro lint``): an AST rule engine enforcing the
invariants the reproduction's guarantees rest on — seeded RNG only,
dtype discipline in the hot modules, a complete VJP table with
gradcheck coverage, and telemetry/fault-site naming that matches the
live registries. See :mod:`repro.lint.rules` for the catalog and
``docs/static-analysis.md`` for the workflow.

Runtime side (``REPRO_SANITIZE=nan,shape,dtype``): opt-in value
sanitizers wrapping tensor-op dispatch and the rollout engine, catching
NaN creation, silent dtype promotion, and shape drift at the op that
caused them. See :mod:`repro.lint.sanitize`.
"""

from .engine import (
    LintConfig, LintReport, Rule, SourceFile, Violation, fingerprint,
    get_rule, iter_rules, load_baseline, rule, run_lint, source_from_text,
    write_baseline,
)
from .sanitize import (
    SANITIZE_ENV, Sanitizer, SanitizerError, active, install, parse_modes,
    uninstall,
)
from . import rules  # registers the rule catalog on import

__all__ = [
    "LintConfig", "LintReport", "Rule", "SourceFile", "Violation",
    "fingerprint", "get_rule", "iter_rules", "load_baseline", "rule",
    "run_lint", "source_from_text", "write_baseline", "rules",
    "Sanitizer", "SanitizerError", "SANITIZE_ENV", "active", "install",
    "parse_modes", "uninstall",
]
