"""Domain-aware static-analysis engine (stdlib ``ast``, zero deps).

The reproduction's guarantees — bitwise kill-and-resume, chaos recovery
converging to identical weights, the f64-bitwise-equal fast path — rest
on invariants that generic linters cannot see: seeded RNG only, strict
float64 discipline outside a declared fp32 allowlist, a complete VJP
table in :mod:`repro.autodiff`, and telemetry/fault-site naming that
matches the live registries. This engine checks them statically.

Structure
---------
* :class:`SourceFile` — one parsed module (path, text, AST, lines).
* :class:`Rule` + the :func:`rule` decorator — the registry. A rule has
  a stable id (``DET001`` …), a scope (``"file"`` rules run once per
  module, ``"project"`` rules see the whole corpus for cross-reference
  checks), and a check callable yielding :class:`Violation`.
* :func:`run_lint` — collect sources, run rules, apply suppressions and
  an optional baseline, return a :class:`LintReport`.

Suppressions
------------
A trailing ``# lint: ignore[DET001]`` comment suppresses that rule on
that line (``# lint: ignore`` suppresses every rule). File-level
pragmas declare properties of the whole module — currently
``# repro-lint: fp32-ok`` marks a file as part of the fp32 allowlist.
Every suppression should carry a justification in the same comment.

Baselines
---------
``--baseline FILE`` loads a JSON map of violation fingerprints (rule id
+ path + a hash of the stripped source line) to counts; matching
violations are reported as ``baselined`` and do not fail the run. A
fresh baseline is written with ``--write-baseline``. The committed
baseline is expected to stay empty — fix violations instead of
grandfathering them.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Violation", "LintConfig", "SourceFile", "Rule", "rule", "iter_rules",
    "get_rule", "run_lint", "LintReport", "load_baseline", "write_baseline",
]

#: hot modules: packages where dtype discipline is enforced (the paths
#: the fp32 inference mode and the fused kernels flow through)
DEFAULT_HOT_MODULES = ("autodiff", "gns", "mpm", "graph", "nn")

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9, ]+)\])?")
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*([a-z0-9-]+)")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a source line."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    baselined: bool = False

    def as_row(self) -> dict:
        row = dataclasses.asdict(self)
        return row

    def as_text(self) -> str:
        tag = " (baselined)" if self.baselined else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{tag}")


@dataclasses.dataclass
class LintConfig:
    """Scope and policy knobs for one lint run."""

    root: Path = Path(".")
    #: directories (relative to root) whose modules get file rules
    src_dirs: tuple[str, ...] = ("src",)
    #: directories read into the corpus for cross-reference only
    ref_dirs: tuple[str, ...] = ("tests",)
    #: package names where DTY001 (explicit dtype) applies
    hot_modules: tuple[str, ...] = DEFAULT_HOT_MODULES
    #: path suffixes allowed to mention float32 without the pragma
    fp32_allowlist: tuple[str, ...] = ()
    strict: bool = False

    def __post_init__(self):
        self.root = Path(self.root)


class SourceFile:
    """A parsed module plus per-line suppression/pragma metadata."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as err:
            self.parse_error = err
        self._ignores: dict[int, set[str] | None] = {}
        self.pragmas: set[str] = set()
        for i, line in enumerate(self.lines, start=1):
            if "#" not in line:
                continue
            m = _IGNORE_RE.search(line)
            if m:
                ids = m.group(1)
                self._ignores[i] = (None if ids is None else
                                    {s.strip() for s in ids.split(",")})
            for pm in _PRAGMA_RE.finditer(line):
                self.pragmas.add(pm.group(1))

    def suppressed(self, rule_id: str, line: int) -> bool:
        ids = self._ignores.get(line, ...)
        if ids is ...:
            return False
        return ids is None or rule_id in ids

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


@dataclasses.dataclass(frozen=True)
class Rule:
    """A registered check. ``scope`` is ``"file"`` or ``"project"``."""

    id: str
    name: str
    scope: str
    doc: str
    severity: str
    check: Callable

    def describe(self) -> dict:
        return {"id": self.id, "name": self.name, "scope": self.scope,
                "severity": self.severity, "doc": self.doc}


_REGISTRY: dict[str, Rule] = {}


def rule(id: str, name: str, scope: str = "file", severity: str = "error"):
    """Register a check. File rules get ``(source, config)``; project
    rules get ``(sources, ref_sources, config)``. Both yield
    ``(line, col, message)`` tuples (project rules yield
    ``(source, line, col, message)``)."""
    if scope not in ("file", "project"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def decorate(fn):
        if id in _REGISTRY:
            raise ValueError(f"duplicate rule id {id}")
        _REGISTRY[id] = Rule(id=id, name=name, scope=scope,
                             doc=(fn.__doc__ or "").strip(),
                             severity=severity, check=fn)
        return fn

    return decorate


def iter_rules() -> Iterator[Rule]:
    return iter(sorted(_REGISTRY.values(), key=lambda r: r.id))


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


# ----------------------------------------------------------------------
# source collection
# ----------------------------------------------------------------------

def _collect_dir(root: Path, sub: str) -> list[SourceFile]:
    base = root / sub
    if not base.is_dir():
        return []
    out = []
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        out.append(SourceFile(path, rel, path.read_text()))
    return out


def collect_sources(config: LintConfig) -> tuple[list[SourceFile], list[SourceFile]]:
    """Return ``(lint targets, cross-reference corpus)``."""
    targets: list[SourceFile] = []
    for sub in config.src_dirs:
        targets.extend(_collect_dir(config.root, sub))
    refs: list[SourceFile] = []
    for sub in config.ref_dirs:
        refs.extend(_collect_dir(config.root, sub))
    return targets, refs


def source_from_text(text: str, rel: str = "<memory>") -> SourceFile:
    """Parse an in-memory snippet (the fixture-test entry point)."""
    return SourceFile(Path(rel), rel, text)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def fingerprint(v: Violation, source: SourceFile | None = None,
                line_text: str | None = None) -> str:
    """Stable id for a violation that survives unrelated line moves:
    rule + path + hash of the stripped source line."""
    if line_text is None:
        line_text = source.line_text(v.line) if source is not None else ""
    digest = hashlib.sha256(line_text.strip().encode()).hexdigest()[:16]
    return f"{v.rule}:{v.path}:{digest}"


def load_baseline(path: str | Path) -> dict[str, int]:
    data = json.loads(Path(path).read_text())
    entries = data.get("violations", data) if isinstance(data, dict) else {}
    return {str(k): int(v) for k, v in entries.items()}


def write_baseline(path: str | Path, report: "LintReport") -> None:
    counts: dict[str, int] = {}
    for fp in report.fingerprints:
        counts[fp] = counts.get(fp, 0) + 1
    payload = {"format": "repro.lint.baseline", "version": 1,
               "violations": dict(sorted(counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------

@dataclasses.dataclass
class LintReport:
    """All findings from one run plus formatting/exit-code policy."""

    violations: list[Violation]
    fingerprints: list[str]
    files_checked: int
    rules_run: int
    suppressed: int = 0

    @property
    def fresh(self) -> list[Violation]:
        return [v for v in self.violations if not v.baselined]

    def exit_code(self, strict: bool = False) -> int:
        fresh = self.fresh
        if strict:
            return 1 if fresh else 0
        return 1 if any(v.severity == "error" for v in fresh) else 0

    def as_text(self) -> str:
        lines = [v.as_text() for v in self.violations]
        fresh = self.fresh
        lines.append(f"checked {self.files_checked} files with "
                     f"{self.rules_run} rules: {len(fresh)} violation(s)"
                     + (f", {len(self.violations) - len(fresh)} baselined"
                        if len(fresh) != len(self.violations) else "")
                     + (f", {self.suppressed} suppressed"
                        if self.suppressed else ""))
        return "\n".join(lines)

    def as_json(self) -> str:
        return json.dumps({
            "format": "repro.lint.report", "version": 1,
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "suppressed": self.suppressed,
            "violations": [v.as_row() for v in self.violations],
            "summary": {"total": len(self.violations),
                        "fresh": len(self.fresh),
                        "baselined": len(self.violations) - len(self.fresh)},
        }, indent=2)


def _emit(source: SourceFile, rule_obj: Rule, line: int, col: int,
          message: str, counters: dict) -> Violation | None:
    if source.suppressed(rule_obj.id, line):
        counters["suppressed"] += 1
        return None
    return Violation(rule=rule_obj.id, path=source.rel, line=line, col=col,
                     message=message, severity=rule_obj.severity)


def run_lint(config: LintConfig | None = None,
             rules: Iterable[str] | None = None,
             baseline: dict[str, int] | None = None,
             sources: list[SourceFile] | None = None,
             ref_sources: list[SourceFile] | None = None) -> LintReport:
    """Run the registered rules and return a :class:`LintReport`.

    ``sources``/``ref_sources`` override filesystem collection (fixture
    tests lint in-memory snippets); ``rules`` restricts to a subset of
    rule ids; ``baseline`` marks known violations as ``baselined``.
    """
    # rule modules self-register on import
    from . import rules as _rules  # noqa: F401

    config = config or LintConfig()
    if sources is None:
        sources, collected_refs = collect_sources(config)
        if ref_sources is None:
            ref_sources = collected_refs
    ref_sources = ref_sources or []

    active = [r for r in iter_rules()
              if rules is None or r.id in set(rules)]
    counters = {"suppressed": 0}
    found: list[tuple[Violation, SourceFile]] = []

    for src in sources:
        if src.parse_error is not None:
            v = Violation(rule="SYNTAX", path=src.rel,
                          line=src.parse_error.lineno or 1, col=0,
                          message=f"cannot parse: {src.parse_error.msg}")
            found.append((v, src))
    parsed = [s for s in sources if s.tree is not None]

    for r in active:
        if r.scope == "file":
            for src in parsed:
                for line, col, message in r.check(src, config):
                    v = _emit(src, r, line, col, message, counters)
                    if v is not None:
                        found.append((v, src))
        else:
            for src, line, col, message in r.check(parsed, ref_sources,
                                                   config):
                v = _emit(src, r, line, col, message, counters)
                if v is not None:
                    found.append((v, src))

    violations: list[Violation] = []
    fingerprints: list[str] = []
    remaining = dict(baseline or {})
    for v, src in sorted(found, key=lambda it: (it[0].path, it[0].line,
                                                it[0].col, it[0].rule)):
        fp = fingerprint(v, src)
        fingerprints.append(fp)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            v = dataclasses.replace(v, baselined=True)
        violations.append(v)
    return LintReport(violations=violations, fingerprints=fingerprints,
                      files_checked=len(sources), rules_run=len(active),
                      suppressed=counters["suppressed"])
