"""Data-parallel training substrate and graph partitioning (E7)."""

from .allreduce import allreduce_state, ring_allreduce
from .pool import (
    DataParallelConfig, DataParallelTrainer, PoolClosedError, WorkerPoolError,
    worker_gradients,
)
from .partition import communication_volume, edge_cut, halo_nodes, partition_graph

__all__ = [
    "allreduce_state", "ring_allreduce",
    "DataParallelConfig", "DataParallelTrainer", "WorkerPoolError",
    "PoolClosedError", "worker_gradients",
    "communication_volume", "edge_cut", "halo_nodes", "partition_graph",
]
