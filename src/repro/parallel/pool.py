"""Data-parallel gradient computation (the paper's multi-GPU training,
mapped to multiprocessing workers on one host).

Each worker evaluates the one-step GNS loss on its own shard of training
windows and returns named gradients; the master combines them with the
ring all-reduce and applies one optimizer update — synchronous data-
parallel SGD, the same semantics as the paper's multi-GPU setup.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from ..data.trajectory import TrainingWindow, Trajectory
from ..gns.simulator import LearnedSimulator
from ..gns.training import GNSTrainer, TrainingConfig
from ..nn import Adam, clip_grad_norm
from .allreduce import allreduce_state

__all__ = ["DataParallelConfig", "DataParallelTrainer", "worker_gradients"]

# module-level worker state (populated by the fork; see _init_worker)
_WORKER_SIM: LearnedSimulator | None = None
_WORKER_TRAINER: GNSTrainer | None = None


def worker_gradients(simulator: LearnedSimulator, windows: list[TrainingWindow],
                     noise_std: float, seed: int) -> dict[str, np.ndarray]:
    """Gradients of the mean one-step loss over ``windows`` (pure function
    usable in- or out-of-process)."""
    trainer = GNSTrainer.__new__(GNSTrainer)
    trainer.simulator = simulator
    trainer.config = TrainingConfig(noise_std=noise_std, seed=seed)
    trainer.rng = np.random.default_rng(seed)
    simulator.zero_grad()
    total = None
    for w in windows:
        loss = trainer._window_loss(w)
        total = loss if total is None else total + loss
    total = total / float(len(windows))
    total.backward()
    return {name: (p.grad if p.grad is not None else np.zeros_like(p.data)).copy()
            for name, p in simulator.named_parameters()}


def _worker_entry(args) -> dict[str, np.ndarray]:
    state, payload = args
    sim = _WORKER_SIM
    assert sim is not None, "worker not initialized"
    sim.load_state_dict(state)
    windows, noise_std, seed = payload
    return worker_gradients(sim, windows, noise_std, seed)


def _init_worker(sim_ckpt_bytes):
    import io

    global _WORKER_SIM
    buf = io.BytesIO(sim_ckpt_bytes)
    _WORKER_SIM = _load_sim_from_bytes(buf)


def _sim_to_bytes(sim: LearnedSimulator) -> bytes:
    import io

    buf = io.BytesIO()
    import tempfile, os

    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as f:
        path = f.name
    try:
        sim.save(path)
        with open(path, "rb") as fh:
            return fh.read()
    finally:
        os.unlink(path)


def _load_sim_from_bytes(buf) -> LearnedSimulator:
    import os, tempfile

    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as f:
        f.write(buf.read())
        path = f.name
    try:
        return LearnedSimulator.load(path)
    finally:
        os.unlink(path)


@dataclass
class DataParallelConfig:
    num_workers: int = 2
    windows_per_worker: int = 2
    learning_rate: float = 1e-4
    noise_std: float = 6.7e-4
    grad_clip: float = 1.0
    seed: int = 0
    use_processes: bool = False   # False = sequential workers (deterministic,
                                  # no fork overhead); True = mp.Pool


class DataParallelTrainer:
    """Synchronous data-parallel trainer with ring-allreduce combining."""

    def __init__(self, simulator: LearnedSimulator,
                 trajectories: list[Trajectory],
                 config: DataParallelConfig | None = None):
        self.simulator = simulator
        self.config = config or DataParallelConfig()
        history = simulator.feature_config.history
        self.windows: list[TrainingWindow] = []
        for t in trajectories:
            self.windows.extend(t.windows(history))
        if not self.windows:
            raise ValueError("no training windows")
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(list(simulator.parameters()),
                              lr=self.config.learning_rate)
        self.step_count = 0
        self.loss_history: list[float] = []
        self._pool = None
        if self.config.use_processes:
            ctx = mp.get_context("fork")
            self._pool = ctx.Pool(
                self.config.num_workers, initializer=_init_worker,
                initargs=(_sim_to_bytes(simulator),))

    def close(self):
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    def _sample_shards(self) -> list[list[TrainingWindow]]:
        cfg = self.config
        shards = []
        for _ in range(cfg.num_workers):
            idx = self.rng.integers(0, len(self.windows),
                                    size=cfg.windows_per_worker)
            shards.append([self.windows[int(i)] for i in idx])
        return shards

    def train_step(self) -> float:
        cfg = self.config
        shards = self._sample_shards()
        seeds = [int(self.rng.integers(0, 2 ** 31)) for _ in shards]

        if self._pool is not None:
            state = self.simulator.state_dict()
            args = [(state, (shard, cfg.noise_std, seed))
                    for shard, seed in zip(shards, seeds)]
            grads_per_worker = self._pool.map(_worker_entry, args)
        else:
            grads_per_worker = [
                worker_gradients(self.simulator, shard, cfg.noise_std, seed)
                for shard, seed in zip(shards, seeds)]

        mean_grads = allreduce_state(grads_per_worker)
        for name, p in self.simulator.named_parameters():
            p.grad = mean_grads[name]
        clip_grad_norm(self.optimizer.params, cfg.grad_clip)
        self.optimizer.step()
        self.step_count += 1

        # track the (cheap) gradient norm as a progress proxy
        loss_proxy = float(np.sqrt(sum((g ** 2).sum()
                                       for g in mean_grads.values())))
        self.loss_history.append(loss_proxy)
        return loss_proxy

    def train(self, num_steps: int) -> list[float]:
        for _ in range(num_steps):
            self.train_step()
        return self.loss_history
