"""Data-parallel gradient computation (the paper's multi-GPU training,
mapped to multiprocessing workers on one host).

Each worker evaluates the one-step GNS loss on its own shard of training
windows and returns named gradients; the master combines them with the
ring all-reduce and applies one optimizer update — synchronous data-
parallel SGD, the same semantics as the paper's multi-GPU setup.

The process pool is **supervised**: every task is dispatched
asynchronously with a per-task deadline (``task_timeout``), stragglers
and crashed tasks are re-dispatched up to ``max_task_retries`` times,
and a pool whose workers keep dying is respawned from scratch
(``pool.respawns`` counter) before the step is abandoned. Chaos sites
``pool.crash`` (task raises) and ``pool.stall`` (task sleeps past its
deadline) exercise exactly these paths deterministically.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from ..data.trajectory import TrainingWindow, Trajectory
from ..gns.simulator import LearnedSimulator
from ..gns.training import GNSTrainer, TrainingConfig
from ..nn import Adam, clip_grad_norm
from ..obs import get_registry
from ..obs.session import TelemetrySession, current_session
from ..resilience.faults import get_injector
from ..resilience.retry import RetryPolicy, retry_call
from .allreduce import allreduce_state

__all__ = ["DataParallelConfig", "DataParallelTrainer", "WorkerPoolError",
           "PoolClosedError", "worker_gradients"]

# module-level worker state (populated by the fork; see _init_worker)
_WORKER_SIM: LearnedSimulator | None = None
_WORKER_TRAINER: GNSTrainer | None = None
_WORKER_SESSION: TelemetrySession | None = None
_WORKER_TASKS = 0

#: how long an injected ``pool.stall`` sleeps — long enough to blow any
#: test-sized task_timeout, short enough to keep the suite fast
_STALL_SECONDS = 0.5


class WorkerPoolError(RuntimeError):
    """A task failed every retry (and any pool respawn) it was granted."""


class PoolClosedError(RuntimeError):
    """Dispatch was attempted on a pool that has been closed.

    Before this existed, a ``train_step()`` racing ``close()`` handed
    tasks to a terminated ``mp.Pool`` — which either raises an opaque
    ``ValueError("Pool not running")`` or, for handles already obtained,
    blocks forever on results that will never arrive. Dispatch now fails
    fast with this typed error instead.
    """


def _apply_task_faults() -> None:
    """Chaos sites for worker tasks (counted per worker process)."""
    inj = get_injector()
    if not inj.armed:
        return
    if inj.fire("pool.stall"):
        time.sleep(_STALL_SECONDS)
    if inj.fire("pool.crash"):
        raise WorkerPoolError("injected worker crash (pool.crash)")


def worker_gradients(simulator: LearnedSimulator, windows: list[TrainingWindow],
                     noise_std: float, seed: int) -> dict[str, np.ndarray]:
    """Gradients of the mean one-step loss over ``windows`` (pure function
    usable in- or out-of-process)."""
    trainer = GNSTrainer.__new__(GNSTrainer)
    trainer.simulator = simulator
    trainer.config = TrainingConfig(noise_std=noise_std, seed=seed)
    trainer.rng = np.random.default_rng(seed)
    simulator.zero_grad()
    total = None
    for w in windows:
        loss = trainer._window_loss(w)
        total = loss if total is None else total + loss
    total = total / float(len(windows))
    total.backward()
    return {name: (p.grad if p.grad is not None else np.zeros_like(p.data)).copy()
            for name, p in simulator.named_parameters()}


def _worker_entry(args) -> dict[str, np.ndarray]:
    global _WORKER_TASKS
    state, payload = args
    sim = _WORKER_SIM
    assert sim is not None, "worker not initialized"
    ses = _WORKER_SESSION
    t0 = time.perf_counter() if ses is not None else 0.0
    _apply_task_faults()
    sim.load_state_dict(state)
    windows, noise_std, seed = payload
    grads = worker_gradients(sim, windows, noise_std, seed)
    if ses is not None:
        _WORKER_TASKS += 1
        ses.event("pool.task_done", task=_WORKER_TASKS, seed=seed,
                  windows=len(windows),
                  seconds=round(time.perf_counter() - t0, 6))
        # flush (not finish): pool.terminate() kills workers without
        # cleanup, so the shard on disk must always be current
        ses.flush()
    return grads


def _init_worker(sim_ckpt_bytes, telemetry_dir=None, worker_counter=None):
    import io

    global _WORKER_SIM, _WORKER_SESSION
    buf = io.BytesIO(sim_ckpt_bytes)
    _WORKER_SIM = _load_sim_from_bytes(buf)
    if telemetry_dir is not None and worker_counter is not None:
        with worker_counter.get_lock():
            idx = worker_counter.value
            worker_counter.value += 1
        from pathlib import Path

        shard = Path(telemetry_dir) / f"worker_{idx:02d}"
        _WORKER_SESSION = TelemetrySession(shard, command="pool.worker",
                                           config={"worker_index": idx})
        _WORKER_SESSION.flush()


def _sim_to_bytes(sim: LearnedSimulator) -> bytes:
    import os, tempfile

    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as f:
        path = f.name
    try:
        sim.save(path)
        with open(path, "rb") as fh:
            return fh.read()
    finally:
        os.unlink(path)


def _load_sim_from_bytes(buf) -> LearnedSimulator:
    import os, tempfile

    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as f:
        f.write(buf.read())
        path = f.name
    try:
        return LearnedSimulator.load(path)
    finally:
        os.unlink(path)


@dataclass
class DataParallelConfig:
    num_workers: int = 2
    windows_per_worker: int = 2
    learning_rate: float = 1e-4
    noise_std: float = 6.7e-4
    grad_clip: float = 1.0
    seed: int = 0
    use_processes: bool = False   # False = sequential workers (deterministic,
                                  # no fork overhead); True = mp.Pool
    #: per-task deadline in seconds; a task not done by then is treated
    #: as a straggler and re-dispatched (None = wait forever)
    task_timeout: float | None = None
    #: re-dispatches granted per task (crash or straggler) before the
    #: pool is respawned / the step fails
    max_task_retries: int = 2
    #: rebuild the pool once when a task has failed every retry
    respawn_on_failure: bool = True
    #: directory for cross-process telemetry: each worker writes a
    #: ``worker_XX/telemetry.jsonl`` shard there (flushed after every
    #: task, so even terminate()-killed workers leave data) and
    #: ``close()`` merges the shards into one deterministic,
    #: worker-labeled ``merged.jsonl`` timeline
    telemetry_dir: str | None = None


class DataParallelTrainer:
    """Synchronous data-parallel trainer with ring-allreduce combining
    and a supervised worker pool (timeouts, retries, respawn)."""

    def __init__(self, simulator: LearnedSimulator,
                 trajectories: list[Trajectory],
                 config: DataParallelConfig | None = None):
        self.simulator = simulator
        self.config = config or DataParallelConfig()
        history = simulator.feature_config.history
        self.windows: list[TrainingWindow] = []
        for t in trajectories:
            self.windows.extend(t.windows(history))
        if not self.windows:
            raise ValueError("no training windows")
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(list(simulator.parameters()),
                              lr=self.config.learning_rate)
        self.step_count = 0
        self.loss_history: list[float] = []
        self._pool = None
        self._closed = False
        self._worker_counter = None
        if self.config.use_processes:
            self._spawn_pool()

    # -- pool lifecycle -------------------------------------------------
    def _spawn_pool(self):
        ctx = mp.get_context("fork")
        if self.config.telemetry_dir is not None and \
                self._worker_counter is None:
            # shared worker-index counter; survives respawns so every
            # worker generation gets a distinct shard directory
            self._worker_counter = ctx.Value("i", 0)
        self._pool = ctx.Pool(
            self.config.num_workers, initializer=_init_worker,
            initargs=(_sim_to_bytes(self.simulator),
                      self.config.telemetry_dir, self._worker_counter))

    def _respawn_pool(self):
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        self._spawn_pool()
        reg = get_registry()
        if reg.enabled:
            reg.counter("pool.respawns").inc()
        ses = current_session()
        if ses is not None:
            ses.event("pool.respawn")

    def merge_telemetry(self):
        """Merge worker shards into ``telemetry_dir/merged.jsonl``;
        returns the merged path or None when telemetry is off."""
        if self.config.telemetry_dir is None:
            return None
        from ..obs.deep import merge_worker_telemetry

        path, _rows, _skipped = merge_worker_telemetry(
            self.config.telemetry_dir)
        return path

    def close(self):
        """Tear the pool down. Idempotent: safe to call any number of
        times, from ``__exit__``, error paths, and finalizers alike."""
        self._closed = True
        # getattr: __init__ may have raised before _pool was assigned,
        # and __del__ still runs close() on the half-built instance
        pool, self._pool = getattr(self, "_pool", None), None
        if pool is not None:
            pool.terminate()
            pool.join()
            if self.config.telemetry_dir is not None:
                try:
                    self.merge_telemetry()
                except OSError:
                    pass  # telemetry must never block teardown

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __del__(self):  # best-effort backstop for non-context-manager use
        try:
            self.close()
        except (OSError, ValueError, RuntimeError):
            pass  # interpreter teardown: the pool may already be gone

    # ------------------------------------------------------------------
    def _sample_shards(self) -> list[list[TrainingWindow]]:
        cfg = self.config
        shards = []
        for _ in range(cfg.num_workers):
            idx = self.rng.integers(0, len(self.windows),
                                    size=cfg.windows_per_worker)
            shards.append([self.windows[int(i)] for i in idx])
        return shards

    # -- supervised dispatch --------------------------------------------
    def _dispatch(self, args: list) -> list[dict]:
        """Run all tasks on the pool with per-task deadlines, retrying
        stragglers and crashed tasks; respawns the pool once if a task
        exhausts its retries. Raises :class:`WorkerPoolError` when a
        task cannot be completed at all."""
        cfg = self.config
        reg = get_registry()
        ses = current_session()
        results: list[dict | None] = [None] * len(args)

        def attempt_all(pending: list[int]) -> list[int]:
            """One round: dispatch ``pending`` tasks, collect, return
            the indices that failed or timed out."""
            pool = self._pool  # racing close() nulls the attribute
            if self._closed or pool is None:
                raise PoolClosedError("dispatch after close()")
            try:
                handles = [(i, pool.apply_async(_worker_entry, (args[i],)))
                           for i in pending]
            except ValueError as err:
                # mp.Pool raises bare ValueError("Pool not running") when
                # terminate() won the race after our closed check above
                raise PoolClosedError("dispatch after close()") from err
            failed: list[int] = []
            for i, handle in handles:
                try:
                    results[i] = handle.get(cfg.task_timeout)
                except mp.TimeoutError:
                    failed.append(i)
                    if reg.enabled:
                        reg.counter("pool.task_timeouts").inc()
                    if ses is not None:
                        ses.event("pool.task_timeout", task=i)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as err:
                    # a worker task re-raises arbitrary user exceptions
                    # through handle.get(); anything non-fatal is a retry
                    failed.append(i)
                    if reg.enabled:
                        reg.counter("pool.task_failures").inc()
                    if ses is not None:
                        ses.event("pool.task_failure", task=i,
                                  error=repr(err))
            return failed

        pending = list(range(len(args)))
        for round_no in range(cfg.max_task_retries + 1):
            pending = attempt_all(pending)
            if not pending:
                return results  # type: ignore[return-value]
            if round_no < cfg.max_task_retries:
                if reg.enabled:
                    reg.counter("pool.task_retries").inc(len(pending))
                if ses is not None:
                    ses.event("pool.task_redispatch", tasks=sorted(pending),
                              round=round_no + 1)
        if cfg.respawn_on_failure:
            # workers may be wedged (stalled tasks hold them); rebuild
            # the pool and give the stragglers one fresh round
            self._respawn_pool()
            pending = attempt_all(pending)
            if not pending:
                return results  # type: ignore[return-value]
        raise WorkerPoolError(
            f"{len(pending)} task(s) failed after "
            f"{cfg.max_task_retries + 1} attempts"
            + (" and a pool respawn" if cfg.respawn_on_failure else ""))

    def _sequential_gradients(self, shard, noise_std, seed) -> dict:
        _apply_task_faults()
        return worker_gradients(self.simulator, shard, noise_std, seed)

    def train_step(self) -> float:
        if self._closed:
            # without this, a closed process-pool trainer has _pool=None
            # and would silently fall through to the sequential branch
            raise PoolClosedError("train_step() after close()")
        cfg = self.config
        shards = self._sample_shards()
        seeds = [int(self.rng.integers(0, 2 ** 31)) for _ in shards]

        try:
            if self._pool is not None:
                state = self.simulator.state_dict()
                args = [(state, (shard, cfg.noise_std, seed))
                        for shard, seed in zip(shards, seeds)]
                grads_per_worker = self._dispatch(args)
            else:
                policy = RetryPolicy(max_attempts=cfg.max_task_retries + 1)
                grads_per_worker = [
                    retry_call(self._sequential_gradients, shard,
                               cfg.noise_std, seed, policy=policy,
                               retry_on=(WorkerPoolError,),
                               op="pool.worker")
                    for shard, seed in zip(shards, seeds)]
        except BaseException:
            # never leak a half-broken pool past a failed step (including
            # Ctrl-C): callers without a context manager still get a clean
            # teardown; the exception always propagates
            self.close()
            raise

        mean_grads = allreduce_state(grads_per_worker)
        for name, p in self.simulator.named_parameters():
            p.grad = mean_grads[name]
        clip_grad_norm(self.optimizer.params, cfg.grad_clip)
        self.optimizer.step()
        self.step_count += 1

        # track the (cheap) gradient norm as a progress proxy
        loss_proxy = float(np.sqrt(sum((g ** 2).sum()
                                       for g in mean_grads.values())))
        self.loss_history.append(loss_proxy)
        return loss_proxy

    def train(self, num_steps: int) -> list[float]:
        for _ in range(num_steps):
            self.train_step()
        return self.loss_history
