"""Graph partitioning for scaling GNS to large particle counts.

The paper's Section 7 names "graph partitioning and advanced sampling
techniques" as the route to million-particle GNS. This module provides
recursive Kernighan–Lin bisection over the interaction graph plus halo
computation (the ghost particles each partition must receive every step)
and a communication-volume estimate.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

__all__ = ["partition_graph", "halo_nodes", "edge_cut", "communication_volume"]


def _to_nx(senders: np.ndarray, receivers: np.ndarray, num_nodes: int) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(num_nodes))
    g.add_edges_from(zip(np.asarray(senders).tolist(),
                         np.asarray(receivers).tolist()))
    return g


def partition_graph(senders: np.ndarray, receivers: np.ndarray,
                    num_nodes: int, num_parts: int,
                    seed: int = 0) -> np.ndarray:
    """Assign each node to one of ``num_parts`` (power of two) partitions.

    Recursive Kernighan–Lin bisection; balanced to within the bisection
    tolerance at each level.
    """
    if num_parts < 1 or (num_parts & (num_parts - 1)) != 0:
        raise ValueError("num_parts must be a positive power of two")
    assignment = np.zeros(num_nodes, dtype=np.int64)
    if num_parts == 1:
        return assignment
    g = _to_nx(senders, receivers, num_nodes)

    def bisect(nodes: set, base: int, parts: int, level_seed: int):
        if parts == 1 or len(nodes) <= 1:
            for n in nodes:
                assignment[n] = base
            return
        sub = g.subgraph(nodes)
        a, b = nx.algorithms.community.kernighan_lin_bisection(
            sub, seed=level_seed)
        bisect(set(a), base, parts // 2, level_seed + 1)
        bisect(set(b), base + parts // 2, parts // 2, level_seed + 2)

    bisect(set(range(num_nodes)), 0, num_parts, seed)
    return assignment


def halo_nodes(assignment: np.ndarray, senders: np.ndarray,
               receivers: np.ndarray, part: int) -> np.ndarray:
    """Ghost nodes partition ``part`` needs: senders of cross-partition
    edges whose receiver lives in ``part``."""
    senders = np.asarray(senders)
    receivers = np.asarray(receivers)
    mask = (assignment[receivers] == part) & (assignment[senders] != part)
    return np.unique(senders[mask])


def edge_cut(assignment: np.ndarray, senders: np.ndarray,
             receivers: np.ndarray) -> int:
    """Number of edges crossing partition boundaries."""
    return int((assignment[np.asarray(senders)] !=
                assignment[np.asarray(receivers)]).sum())


def communication_volume(assignment: np.ndarray, senders: np.ndarray,
                         receivers: np.ndarray) -> int:
    """Total ghost-node transfers per step (sum of halo sizes)."""
    parts = np.unique(assignment)
    return int(sum(halo_nodes(assignment, senders, receivers, int(p)).size
                   for p in parts))
