"""Ring all-reduce over per-worker gradient sets.

Models the collective used by the paper's multi-GPU data-parallel GNS
(Kumar & Vantassel 2022): each worker holds a full gradient; the ring
algorithm exchanges chunks in 2(P−1) steps so every worker ends with the
mean. Here the "workers" are in-process arrays — the chunked schedule is
executed faithfully so tests can verify it is communication-equivalent to
a direct mean."""

from __future__ import annotations

import numpy as np

__all__ = ["ring_allreduce", "allreduce_state"]


def ring_allreduce(worker_grads: list[np.ndarray]) -> list[np.ndarray]:
    """Average one gradient tensor across workers via the ring schedule.

    Parameters
    ----------
    worker_grads:
        One array per worker, identical shapes.

    Returns
    -------
    List of per-worker results (all equal to the element-wise mean).
    """
    p = len(worker_grads)
    if p == 0:
        raise ValueError("no workers")
    shape = worker_grads[0].shape
    if any(g.shape != shape for g in worker_grads):
        raise ValueError("gradient shapes differ across workers")
    if p == 1:
        return [worker_grads[0].copy()]

    flat = [g.astype(np.float64).ravel().copy() for g in worker_grads]
    n = flat[0].size
    # global chunk boundaries (P chunks, last may be ragged)
    bounds = np.linspace(0, n, p + 1).astype(int)

    def sl(c: int) -> slice:
        c %= p
        return slice(bounds[c], bounds[c + 1])

    # reduce-scatter: at step s worker r sends chunk (r − s); all sends in a
    # step are buffered first to model simultaneous exchange
    for step in range(p - 1):
        messages = []
        for r in range(p):
            c = (r - step) % p
            messages.append((r, (r + 1) % p, c, flat[r][sl(c)].copy()))
        for _, dst, c, data in messages:
            flat[dst][sl(c)] += data
    # after reduce-scatter, worker r owns the fully-reduced chunk (r + 1)

    # all-gather: circulate the reduced chunks around the ring
    for step in range(p - 1):
        messages = []
        for r in range(p):
            c = (r + 1 - step) % p
            messages.append((r, (r + 1) % p, c, flat[r][sl(c)].copy()))
        for _, dst, c, data in messages:
            flat[dst][sl(c)] = data

    return [(f / p).reshape(shape) for f in flat]


def allreduce_state(worker_states: list[dict[str, np.ndarray]]
                    ) -> dict[str, np.ndarray]:
    """Mean of named gradient dicts (one per worker) via the ring collective."""
    if not worker_states:
        raise ValueError("no worker states")
    keys = sorted(worker_states[0])
    for st in worker_states:
        if sorted(st) != keys:
            raise ValueError("worker gradient keys differ")
    return {k: ring_allreduce([st[k] for st in worker_states])[0] for k in keys}
