"""repro — differentiable graph network simulators for forward and inverse
particle/fluid problems.

Reproduction of Kumar & Choi, *Accelerating Particle and Fluid Simulations
with Differentiable Graph Networks for Solving Forward and Inverse
Problems* (SC23 AI4S workshop), built entirely on NumPy:

* :mod:`repro.autodiff` — reverse-mode AD engine (replaces PyTorch).
* :mod:`repro.gns` — the graph network simulator (Encode-Process-Decode,
  attention option, differentiable rollouts).
* :mod:`repro.meshnet` — MeshGraphNet for mesh-based fluids.
* :mod:`repro.mpm` — explicit 2-D Material Point Method substrate.
* :mod:`repro.cfd` — lattice-Boltzmann CFD substrate.
* :mod:`repro.hybrid` — hybrid GNS/MPM solver.
* :mod:`repro.inverse` — gradient-based inversion through GNS rollouts.
* :mod:`repro.nbody`, :mod:`repro.interpret`, :mod:`repro.symreg` —
  n-body springs, message extraction, symbolic regression (Table 1).
* :mod:`repro.parallel` — data-parallel training substrate.
* :mod:`repro.train` — the unified training stack: one resumable
  Trainer, schedules, grad accumulation, EMA, TrainState checkpoints.
* :mod:`repro.obs` — telemetry: tracing spans, metrics, run manifests,
  physics health monitors.
"""

__version__ = "1.0.0"

from . import autodiff, nn, graph, data, obs, train, utils  # noqa: F401  (lightweight)

__all__ = ["autodiff", "nn", "graph", "data", "obs", "train", "utils",
           "__version__"]
