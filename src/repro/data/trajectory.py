"""Trajectory containers and training-window extraction for GNS."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Trajectory", "TrainingWindow"]


@dataclass
class Trajectory:
    """A recorded particle rollout.

    Attributes
    ----------
    positions:
        ``(T, n, d)`` particle positions at equal time intervals.
    dt:
        Recording interval (time between consecutive frames).
    material:
        Scalar material descriptor (the paper uses the friction angle φ);
        exposed to the GNS as a node feature so it can be inverted for.
    bounds:
        ``(d, 2)`` array of (lower, upper) wall coordinates.
    meta:
        Free-form provenance (scenario parameters, solver settings).
    """

    positions: np.ndarray
    dt: float
    material: float = 0.0
    bounds: np.ndarray | None = None
    particle_types: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.positions = np.asarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 3:
            raise ValueError("positions must be (T, n, d)")
        if self.bounds is not None:
            self.bounds = np.asarray(self.bounds, dtype=np.float64)
            if self.bounds.shape != (self.positions.shape[2], 2):
                raise ValueError("bounds must be (d, 2)")
        if self.particle_types is not None:
            self.particle_types = np.asarray(self.particle_types,
                                             dtype=np.int64)
            if self.particle_types.shape != (self.positions.shape[1],):
                raise ValueError("particle_types must be (n,)")

    @property
    def num_steps(self) -> int:
        return self.positions.shape[0]

    @property
    def num_particles(self) -> int:
        return self.positions.shape[1]

    @property
    def dim(self) -> int:
        return self.positions.shape[2]

    def velocities(self) -> np.ndarray:
        """Per-frame displacement 'velocities' v_t = x_t − x_{t−1}; shape
        ``(T−1, n, d)``. GNS works in displacement units (dt absorbed)."""
        return np.diff(self.positions, axis=0)

    def accelerations(self) -> np.ndarray:
        """Second differences a_t = v_{t+1} − v_t; shape ``(T−2, n, d)``."""
        return np.diff(self.positions, axis=0, n=2)

    def windows(self, history: int, lookback: int = 0) -> list["TrainingWindow"]:
        """All training windows with ``history`` velocity steps of context.

        A window at time t exposes positions ``x_{t−history} … x_t`` as
        input and ``x_{t+1}`` as the target. With ``lookback > 0`` each
        window additionally carries the ``lookback`` frames *before* its
        history — the context pushforward training needs to roll the model
        into the window (see ``TrainingConfig.pushforward_steps``).
        """
        out = []
        for t in range(history + lookback, self.num_steps - 1):
            out.append(TrainingWindow(
                position_history=self.positions[t - history:t + 1],
                target_position=self.positions[t + 1],
                material=self.material,
                bounds=self.bounds,
                particle_types=self.particle_types,
                lookback_frames=(self.positions[t - history - lookback:
                                                t - history]
                                 if lookback else None),
            ))
        return out


@dataclass
class TrainingWindow:
    """One supervised example: C+1 context positions → next position."""

    position_history: np.ndarray    # (C+1, n, d)
    target_position: np.ndarray     # (n, d)
    material: float = 0.0
    bounds: np.ndarray | None = None
    particle_types: np.ndarray | None = None
    #: optional (lookback, n, d) frames preceding the history, for
    #: pushforward training
    lookback_frames: np.ndarray | None = None

    def target_acceleration(self) -> np.ndarray:
        """a_t = x_{t+1} − 2 x_t + x_{t−1} (displacement units)."""
        x_t = self.position_history[-1]
        x_prev = self.position_history[-2]
        return self.target_position - 2.0 * x_t + x_prev
