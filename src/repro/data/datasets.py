"""Dataset generation: MPM rollouts → GNS training trajectories.

The paper trains on 26 square-shaped granular-mass-in-a-box trajectories
simulated with CB-Geo MPM; :func:`generate_box_flow_dataset` reproduces
that distribution with our MPM substrate (different seeds → different
initial size, position and velocity).
"""

from __future__ import annotations

import numpy as np

from ..mpm import flow_around_obstacle, granular_box_flow, granular_column_collapse
from .trajectory import Trajectory

__all__ = [
    "generate_box_flow_dataset", "generate_column_collapse_trajectory",
    "generate_obstacle_flow_trajectory",
    "train_test_split", "normalization_stats", "RunningMoments",
]


def generate_box_flow_dataset(
    num_trajectories: int = 26,
    steps: int = 400,
    record_every: int = 4,
    seed: int = 0,
    **scenario_kwargs,
) -> list[Trajectory]:
    """Simulate the paper's training distribution.

    Each trajectory uses a different seed, hence a different square
    granular mass (size/position/velocity). ``record_every`` subsamples
    solver steps so the learned timestep is larger than the CFL step —
    exactly how GNS datasets are produced from MPM runs.
    """
    out = []
    for i in range(num_trajectories):
        spec = granular_box_flow(seed=seed + i, **scenario_kwargs)
        solver = spec.solver
        dt = solver.stable_dt()
        frames = solver.rollout(steps, record_every=record_every, dt=dt)
        bounds = _box_bounds(solver)
        out.append(Trajectory(
            positions=frames,
            dt=dt * record_every,
            material=spec.params["friction_angle"],
            bounds=bounds,
            meta=dict(spec.params, scenario=spec.name, steps=steps,
                      record_every=record_every),
        ))
    return out


def generate_column_collapse_trajectory(
    friction_angle: float = 30.0,
    steps: int = 800,
    record_every: int = 4,
    **scenario_kwargs,
) -> Trajectory:
    """One column-collapse rollout (hybrid solver & inverse-problem data)."""
    spec = granular_column_collapse(friction_angle=friction_angle,
                                    **scenario_kwargs)
    solver = spec.solver
    dt = solver.stable_dt()
    frames = solver.rollout(steps, record_every=record_every, dt=dt)
    return Trajectory(
        positions=frames,
        dt=dt * record_every,
        material=friction_angle,
        bounds=_box_bounds(solver),
        meta=dict(spec.params, scenario=spec.name, steps=steps,
                  record_every=record_every),
    )


def generate_obstacle_flow_trajectory(
    steps: int = 600,
    record_every: int = 10,
    obstacle_samples: int = 24,
    **scenario_kwargs,
) -> Trajectory:
    """Column collapse against a rigid circular obstacle, exposed to the
    GNS as a typed-particle system.

    The moving granular material is particle type 0; the obstacle surface
    is sampled as ``obstacle_samples`` *static* particles of type 1, so a
    type-aware GNS (``num_particle_types=2, static_types=(1,)``) can learn
    the boundary interaction (Mayr et al.'s setting, §2 of the paper).
    """
    spec = flow_around_obstacle(**scenario_kwargs)
    solver = spec.solver
    dt = solver.stable_dt()
    frames = solver.rollout(steps, record_every=record_every, dt=dt)

    cx, cy = spec.params["obstacle_center"]
    r = spec.params["obstacle_radius"]
    theta = np.linspace(0.0, 2.0 * np.pi, obstacle_samples, endpoint=False)
    ring = np.stack([cx + r * np.cos(theta), cy + r * np.sin(theta)], axis=1)
    ring_frames = np.broadcast_to(ring, (frames.shape[0],) + ring.shape)

    positions = np.concatenate([frames, ring_frames], axis=1)
    types = np.concatenate([
        np.zeros(frames.shape[1], dtype=np.int64),
        np.ones(obstacle_samples, dtype=np.int64),
    ])
    return Trajectory(
        positions=positions,
        dt=dt * record_every,
        material=30.0,
        bounds=_box_bounds(solver),
        particle_types=types,
        meta=dict(spec.params, scenario=spec.name, steps=steps,
                  record_every=record_every,
                  obstacle_samples=obstacle_samples),
    )


def _box_bounds(solver) -> np.ndarray:
    m = solver.grid.interior_margin()
    sx, sy = solver.grid.size
    return np.array([[m, sx - m], [m, sy - m]])


def train_test_split(trajectories: list[Trajectory], test_fraction: float = 0.2,
                     seed: int = 0) -> tuple[list[Trajectory], list[Trajectory]]:
    """Deterministic shuffled split."""
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(trajectories))
    n_test = max(1, int(round(test_fraction * len(trajectories)))) if trajectories else 0
    test = [trajectories[i] for i in idx[:n_test]]
    train = [trajectories[i] for i in idx[n_test:]]
    return train, test


class RunningMoments:
    """Streaming per-dimension mean/std (Chan et al. parallel Welford).

    Large datasets (the paper's 20M-step corpora) cannot be concatenated
    in memory; this accumulates batch moments with O(d) state and merges
    exactly.
    """

    def __init__(self, dim: int):
        self.count = 0.0
        self.mean = np.zeros(dim)
        self.m2 = np.zeros(dim)

    def update(self, batch: np.ndarray) -> None:
        batch = np.asarray(batch, dtype=np.float64).reshape(-1, self.mean.shape[0])
        n_b = batch.shape[0]
        if n_b == 0:
            return
        mean_b = batch.mean(axis=0)
        m2_b = ((batch - mean_b) ** 2).sum(axis=0)
        delta = mean_b - self.mean
        total = self.count + n_b
        self.mean = self.mean + delta * (n_b / total)
        self.m2 = self.m2 + m2_b + delta ** 2 * (self.count * n_b / total)
        self.count = total

    def std(self, eps: float = 1e-12) -> np.ndarray:
        if self.count == 0:
            return np.full_like(self.mean, eps)
        return np.maximum(np.sqrt(self.m2 / self.count), eps)


def normalization_stats(trajectories: list[Trajectory]) -> dict[str, np.ndarray]:
    """Mean/std of velocities and accelerations over a dataset.

    GNS normalizes network inputs/targets by dataset statistics; the same
    stats must be reused at rollout time. Computed with streaming Welford
    accumulation (one trajectory in memory at a time).
    """
    if not trajectories:
        raise ValueError("no trajectories")
    dim = trajectories[0].dim
    vel = RunningMoments(dim)
    acc = RunningMoments(dim)
    for t in trajectories:
        vel.update(t.velocities())
        acc.update(t.accelerations())
    return {
        "velocity_mean": vel.mean,
        "velocity_std": vel.std(),
        "acceleration_mean": acc.mean,
        "acceleration_std": acc.std(),
    }
