"""Dataset generation, trajectory containers, and serialization."""

from .trajectory import Trajectory, TrainingWindow
from .datasets import (
    RunningMoments, generate_box_flow_dataset,
    generate_column_collapse_trajectory, generate_obstacle_flow_trajectory,
    normalization_stats, train_test_split,
)
from .io import (
    CorruptStateError, atomic_write_bytes, file_sha256, load_checkpoint,
    load_state_npz, load_trajectories, save_checkpoint, save_state_npz,
    save_trajectories, verify_state_npz,
)

__all__ = [
    "Trajectory", "TrainingWindow",
    "RunningMoments", "generate_box_flow_dataset",
    "generate_column_collapse_trajectory",
    "generate_obstacle_flow_trajectory",
    "normalization_stats", "train_test_split",
    "load_checkpoint", "load_trajectories", "save_checkpoint", "save_trajectories",
    "save_state_npz", "load_state_npz", "verify_state_npz",
    "CorruptStateError", "atomic_write_bytes", "file_sha256",
]
