"""NPZ serialization of trajectory datasets and model checkpoints.

Every writer here is **atomic**: payloads go to a ``<name>.tmp`` file in
the destination directory, are fsync'd, and are moved into place with
``os.replace`` — a process killed mid-save can leave a stale ``*.tmp``
behind (pruned by :func:`repro.train.latest_checkpoint`) but never a
truncated file under the real name. State archives additionally carry a
SHA-256 of the ``.npz`` bytes in their JSON sidecar so loaders can
reject silent corruption (:func:`verify_state_npz`).

Loaders are instrumented with the :mod:`repro.resilience.faults` sites
``io.load`` (raise on load) and writers with ``ckpt.corrupt`` /
``ckpt.truncate`` (damage the just-written archive) — no-ops unless a
chaos run arms them.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from .trajectory import Trajectory

__all__ = ["save_trajectories", "load_trajectories", "save_checkpoint",
           "load_checkpoint", "save_state_npz", "load_state_npz",
           "verify_state_npz", "atomic_write_bytes", "file_sha256",
           "CorruptStateError"]


class CorruptStateError(ValueError):
    """A state archive failed its checksum or could not be parsed."""


def _injector():
    from ..resilience.faults import get_injector

    return get_injector()


# ----------------------------------------------------------------------
# atomic write machinery
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def _atomic_savez(path: Path, payload: dict) -> None:
    """``np.savez_compressed`` through the atomic tmp-file protocol."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        np.savez_compressed(f, **payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def file_sha256(path: str | Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _apply_ckpt_faults(path: Path) -> None:
    """Damage a just-written archive when chaos clauses select it."""
    inj = _injector()
    if not inj.armed:
        return
    if inj.fire("ckpt.corrupt"):
        with open(path, "r+b") as f:
            f.seek(max(path.stat().st_size // 2, 0))
            f.write(b"\x00CHAOS\x00")
    if inj.fire("ckpt.truncate"):
        with open(path, "r+b") as f:
            f.truncate(max(path.stat().st_size // 3, 1))


# ----------------------------------------------------------------------
# trajectory datasets
# ----------------------------------------------------------------------
def save_trajectories(path: str | Path, trajectories: list[Trajectory]) -> None:
    """Save a dataset to a single ``.npz`` file (atomically)."""
    payload: dict[str, np.ndarray] = {"count": np.array(len(trajectories))}
    for i, t in enumerate(trajectories):
        payload[f"positions_{i}"] = t.positions
        payload[f"dt_{i}"] = np.array(t.dt)
        payload[f"material_{i}"] = np.array(t.material)
        if t.bounds is not None:
            payload[f"bounds_{i}"] = t.bounds
        if t.particle_types is not None:
            payload[f"types_{i}"] = t.particle_types
        payload[f"meta_{i}"] = np.array(json.dumps(t.meta, default=str))
    _atomic_savez(Path(path), payload)


def load_trajectories(path: str | Path) -> list[Trajectory]:
    """Load a dataset written by :func:`save_trajectories`."""
    _injector().raise_if("io.load")
    with np.load(path, allow_pickle=False) as data:
        count = int(data["count"])
        out = []
        for i in range(count):
            bounds = data[f"bounds_{i}"] if f"bounds_{i}" in data else None
            types = data[f"types_{i}"] if f"types_{i}" in data else None
            out.append(Trajectory(
                positions=data[f"positions_{i}"],
                dt=float(data[f"dt_{i}"]),
                material=float(data[f"material_{i}"]),
                bounds=bounds,
                particle_types=types,
                meta=json.loads(str(data[f"meta_{i}"])),
            ))
    return out


# ----------------------------------------------------------------------
# weights-only model checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(path: str | Path, state: dict[str, np.ndarray],
                    extra: dict | None = None) -> None:
    """Persist a model ``state_dict`` (plus JSON-serializable extras)."""
    payload = {f"param::{k}": v for k, v in state.items()}
    payload["extra"] = np.array(json.dumps(extra or {}, default=str))
    _atomic_savez(Path(path), payload)


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    _injector().raise_if("io.load")
    with np.load(path, allow_pickle=False) as data:
        state = {k[len("param::"):]: data[k] for k in data.files if k.startswith("param::")}
        extra = json.loads(str(data["extra"]))
    return state, extra


# ----------------------------------------------------------------------
# generic state archives (TrainState)
# ----------------------------------------------------------------------
def save_state_npz(path: str | Path, arrays: dict[str, np.ndarray],
                   manifest: dict) -> None:
    """One ``.npz`` of named arrays plus a JSON ``manifest`` entry.

    The generic container behind :class:`repro.train.TrainState`: arrays
    carry the weights/moments, the manifest carries every scalar
    (versions, steps, RNG state, config hash). A human-readable copy of
    the manifest — extended with the archive's SHA-256 and byte size —
    is written next to the archive as ``<path>.json``; both writes are
    atomic, and the sidecar lands only after the archive, so a checksum-
    bearing sidecar always describes complete bytes.
    """
    path = Path(path)
    payload = {f"arr::{k}": np.asarray(v) for k, v in arrays.items()}
    payload["manifest"] = np.array(json.dumps(manifest, default=str))
    _atomic_savez(path, payload)
    _apply_ckpt_faults(path)
    sidecar = dict(manifest)
    sidecar["sha256"] = file_sha256(path)
    sidecar["size_bytes"] = path.stat().st_size
    atomic_write_bytes(path.with_suffix(path.suffix + ".json"),
                       json.dumps(sidecar, indent=2, default=str).encode())


def verify_state_npz(path: str | Path) -> bool:
    """True when ``path`` matches the SHA-256 its sidecar recorded.

    Archives without a sidecar (or with a pre-checksum sidecar) verify
    by parseability alone; unreadable/corrupt archives are False, never
    an exception — this is the probe :func:`repro.train.latest_checkpoint`
    uses to skip damaged files.
    """
    path = Path(path)
    if not path.exists():
        return False
    sidecar = path.with_suffix(path.suffix + ".json")
    try:
        if sidecar.exists():
            recorded = json.loads(sidecar.read_text()).get("sha256")
            if recorded is not None:
                return file_sha256(path) == recorded
        with np.load(path, allow_pickle=False) as data:
            return "manifest" in data.files
    except (OSError, ValueError, KeyError, json.JSONDecodeError,
            zipfile.BadZipFile, zlib.error):
        return False


def load_state_npz(path: str | Path,
                   verify: bool = True) -> tuple[dict[str, np.ndarray], dict]:
    """Load an archive written by :func:`save_state_npz`.

    With ``verify`` (default) the archive's SHA-256 is checked against
    its sidecar first; a mismatch raises :class:`CorruptStateError`
    instead of whatever confusing error the torn bytes would produce
    downstream.
    """
    _injector().raise_if("io.load")
    path = Path(path)
    if verify and not verify_state_npz(path):
        raise CorruptStateError(
            f"{path} failed verification (checksum mismatch or unreadable)")
    try:
        with np.load(path, allow_pickle=False) as data:
            if "manifest" not in data.files:
                raise CorruptStateError(
                    f"{path} is not a state archive (no manifest)")
            arrays = {k[len("arr::"):]: data[k] for k in data.files
                      if k.startswith("arr::")}
            manifest = json.loads(str(data["manifest"]))
    except (OSError, KeyError, json.JSONDecodeError,
            zipfile.BadZipFile, zlib.error) as err:
        raise CorruptStateError(f"{path} is unreadable: {err}") from err
    return arrays, manifest
