"""NPZ serialization of trajectory datasets and model checkpoints."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .trajectory import Trajectory

__all__ = ["save_trajectories", "load_trajectories", "save_checkpoint",
           "load_checkpoint", "save_state_npz", "load_state_npz"]


def save_trajectories(path: str | Path, trajectories: list[Trajectory]) -> None:
    """Save a dataset to a single ``.npz`` file."""
    payload: dict[str, np.ndarray] = {"count": np.array(len(trajectories))}
    for i, t in enumerate(trajectories):
        payload[f"positions_{i}"] = t.positions
        payload[f"dt_{i}"] = np.array(t.dt)
        payload[f"material_{i}"] = np.array(t.material)
        if t.bounds is not None:
            payload[f"bounds_{i}"] = t.bounds
        if t.particle_types is not None:
            payload[f"types_{i}"] = t.particle_types
        payload[f"meta_{i}"] = np.array(json.dumps(t.meta, default=str))
    np.savez_compressed(path, **payload)


def load_trajectories(path: str | Path) -> list[Trajectory]:
    """Load a dataset written by :func:`save_trajectories`."""
    with np.load(path, allow_pickle=False) as data:
        count = int(data["count"])
        out = []
        for i in range(count):
            bounds = data[f"bounds_{i}"] if f"bounds_{i}" in data else None
            types = data[f"types_{i}"] if f"types_{i}" in data else None
            out.append(Trajectory(
                positions=data[f"positions_{i}"],
                dt=float(data[f"dt_{i}"]),
                material=float(data[f"material_{i}"]),
                bounds=bounds,
                particle_types=types,
                meta=json.loads(str(data[f"meta_{i}"])),
            ))
    return out


def save_checkpoint(path: str | Path, state: dict[str, np.ndarray],
                    extra: dict | None = None) -> None:
    """Persist a model ``state_dict`` (plus JSON-serializable extras)."""
    payload = {f"param::{k}": v for k, v in state.items()}
    payload["extra"] = np.array(json.dumps(extra or {}, default=str))
    np.savez_compressed(path, **payload)


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        state = {k[len("param::"):]: data[k] for k in data.files if k.startswith("param::")}
        extra = json.loads(str(data["extra"]))
    return state, extra


def save_state_npz(path: str | Path, arrays: dict[str, np.ndarray],
                   manifest: dict) -> None:
    """One ``.npz`` of named arrays plus a JSON ``manifest`` entry.

    The generic container behind :class:`repro.train.TrainState`: arrays
    carry the weights/moments, the manifest carries every scalar
    (versions, steps, RNG state, config hash). A human-readable copy of
    the manifest is written next to the archive as ``<path>.json``.
    """
    path = Path(path)
    payload = {f"arr::{k}": np.asarray(v) for k, v in arrays.items()}
    text = json.dumps(manifest, default=str)
    payload["manifest"] = np.array(text)
    np.savez_compressed(path, **payload)
    path.with_suffix(path.suffix + ".json").write_text(
        json.dumps(manifest, indent=2, default=str))


def load_state_npz(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load an archive written by :func:`save_state_npz`."""
    with np.load(path, allow_pickle=False) as data:
        if "manifest" not in data.files:
            raise ValueError(f"{path} is not a state archive (no manifest)")
        arrays = {k[len("arr::"):]: data[k] for k in data.files
                  if k.startswith("arr::")}
        manifest = json.loads(str(data["manifest"]))
    return arrays, manifest
