"""End-to-end force-law discovery: GNS messages → symbolic regression →
Table-1-style model table (Section 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..symreg import (
    FORCE, LENGTH, MASS, DIMENSIONLESS, Dim, SymbolicRegressionConfig,
    SymbolicRegressor, check_dimensions, score_front,
)
from ..symreg.selection import ScoredEntry

__all__ = ["DiscoveryResult", "discover_law", "DEFAULT_VAR_DIMS"]

# dimensions of the n-body edge features (mass, length, time exponents)
DEFAULT_VAR_DIMS: dict[str, Dim] = {
    "dx": LENGTH, "dx_x": LENGTH, "dx_y": LENGTH,
    "r1": LENGTH, "r2": LENGTH,
    "m1": MASS, "m2": MASS,
}


@dataclass
class DiscoveryResult:
    """Outcome of one symbolic-regression discovery run."""

    rows: list[ScoredEntry]        # the Table 1 rows (sorted by complexity)
    chosen_index: int
    best_expression: str
    best_mae: float

    def as_table(self) -> str:
        """Render the result as a Table-1-like text table."""
        lines = ["Eq. | Derived equation | MAE | MSE | Cx | Da | chosen",
                 "----+------------------+-----+-----+----+----+-------"]
        for i, r in enumerate(self.rows, start=1):
            da = {True: "Y", False: "N", None: "-"}[r.dimensional_ok]
            star = "*" if r.chosen else " "
            lines.append(
                f"{i}{star:2s}| {r.expr_str} | {r.mae:.4g} | {r.mse:.4g} "
                f"| {r.complexity} | {da} |")
        return "\n".join(lines)


def discover_law(features: dict[str, np.ndarray], target: np.ndarray,
                 config: SymbolicRegressionConfig | None = None,
                 var_dims: dict[str, Dim] | None = None,
                 target_dim: Dim | None = None) -> DiscoveryResult:
    """Fit symbolic expressions to ``target`` over the named features.

    Implements the paper's full pipeline: GA minimizing MAE, weighted
    complexity, Pareto front, dimensional-analysis flags, and the
    ``−Δlog(MAE)/Δc`` selection rule.
    """
    reg = SymbolicRegressor(config)
    reg.fit(features, np.asarray(target, dtype=np.float64))
    front = reg.pareto_front()
    if not front:
        raise RuntimeError("symbolic regression produced no valid models")

    rows = score_front(front)
    dims = {**DEFAULT_VAR_DIMS, **(var_dims or {})}
    for row, entry in zip(rows, front):
        try:
            row.dimensional_ok = check_dimensions(entry.expr, dims, target_dim)
        except KeyError:
            row.dimensional_ok = None

    # the paper chooses the best-scoring model; ties by lower complexity
    scores = [r.score for r in rows]
    chosen = int(np.argmax(scores)) if len(rows) > 1 else 0
    rows[chosen].chosen = True
    return DiscoveryResult(
        rows=rows, chosen_index=chosen,
        best_expression=rows[chosen].expr_str,
        best_mae=rows[chosen].mae,
    )
