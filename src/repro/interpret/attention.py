"""Attention-coefficient analysis for the attention GNS.

Section 3 claims the graph attention mechanism "focuses on the local
interaction law"; Section 7 adds that it "needs further analysis on its
ability to learn interaction physics". These tools provide that analysis:
per-node entropy of the attention distribution (uniform vs focused) and
an attention-vs-distance profile (does the model attend to close
neighbors, as contact physics demands?).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad
from ..gns.simulator import LearnedSimulator

__all__ = ["extract_attention", "attention_entropy", "attention_by_distance"]


def extract_attention(simulator: LearnedSimulator,
                      position_history: np.ndarray,
                      material: float | None = None,
                      particle_types: np.ndarray | None = None) -> dict:
    """Run one prediction and collect per-block attention coefficients.

    Returns a dict with ``alphas`` (list of (E,) arrays, one per attention
    block), ``senders``, ``receivers``, and edge ``distances``.
    """
    if not simulator.network_config.attention:
        raise ValueError("simulator has no attention processor")
    with no_grad():
        graph = simulator.featurizer.build_graph(
            [Tensor(np.asarray(f)) for f in position_history],
            material, particle_types)
        _, alphas = simulator.network.forward_with_attention(graph)
    distances = graph.edge_features.data[:, -1] * \
        simulator.feature_config.connectivity_radius
    return {
        "alphas": alphas,
        "senders": graph.senders,
        "receivers": graph.receivers,
        "distances": distances,
        "num_nodes": graph.num_nodes,
    }


def attention_entropy(alpha: np.ndarray, receivers: np.ndarray,
                      num_nodes: int) -> np.ndarray:
    """Normalized entropy of each node's incoming-attention distribution.

    1.0 = uniform attention over neighbors (no selectivity);
    0.0 = all attention on a single neighbor. Nodes with < 2 incoming
    edges are returned as NaN (entropy undefined).
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    entropy = np.zeros(num_nodes)
    np.add.at(entropy, receivers, -alpha * np.log(np.maximum(alpha, 1e-30)))
    degree = np.bincount(receivers, minlength=num_nodes)
    out = np.full(num_nodes, np.nan)
    multi = degree >= 2
    out[multi] = entropy[multi] / np.log(degree[multi])
    return out


def attention_by_distance(alpha: np.ndarray, distances: np.ndarray,
                          bins: int = 8,
                          radius: float | None = None
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Mean attention weight per edge-length bin.

    Returns (bin centers, mean attention). A *physical* contact model
    should down-weight distant neighbors, so the profile should decay —
    compare against the uniform level 1/⟨degree⟩.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    distances = np.asarray(distances, dtype=np.float64)
    hi = radius if radius is not None else float(distances.max()) or 1.0
    edges_bins = np.linspace(0.0, hi, bins + 1)
    centers = 0.5 * (edges_bins[:-1] + edges_bins[1:])
    idx = np.clip(np.digitize(distances, edges_bins) - 1, 0, bins - 1)
    sums = np.bincount(idx, weights=alpha, minlength=bins)
    counts = np.bincount(idx, minlength=bins)
    means = np.divide(sums, counts, out=np.full(bins, np.nan),
                      where=counts > 0)
    return centers, means
