"""Interpretable GNS for the n-body experiment (Section 6).

A single-message-pass graph network in the style the paper inherits from
Cranmer et al.: the edge model sees physical pair attributes
``(Δx, ‖Δx‖, r_s, r_r, m_s, m_r)`` and produces a low-dimensional message;
the node model maps the aggregated message (plus ``m_i, r_i``) to the
particle acceleration. An L1 penalty on the messages forces the network
to encode the interaction law in a minimal vector space, which is what
makes symbolic regression on the messages tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, concatenate, no_grad
from ..autodiff.functional import l1_penalty, mse_loss, norm
from ..autodiff.scatter import gather, scatter_add
from ..nn import MLP, Adam, Module
from ..nbody.dataset import SpringSample
from ..train import Trainer, TrainerOptions, TrainTask

__all__ = ["InterpretableConfig", "InterpretableGNS", "SpringSampleTask",
           "train_interpretable_gns", "edge_feature_dict"]


@dataclass
class InterpretableConfig:
    message_dim: int = 8
    hidden: int = 32
    hidden_layers: int = 2
    l1_weight: float = 1e-2
    learning_rate: float = 3e-3
    seed: int = 0

    # edge features: Δx (2), dist (1), r_s, r_r, m_s, m_r
    EDGE_IN: int = 7
    # node features: m_i, r_i
    NODE_IN: int = 2


class InterpretableGNS(Module):
    """One-shot force/acceleration predictor with exposed edge messages."""

    def __init__(self, config: InterpretableConfig | None = None):
        super().__init__()
        cfg = config or InterpretableConfig()
        rng = np.random.default_rng(cfg.seed)
        sizes = [cfg.hidden] * cfg.hidden_layers
        self.edge_mlp = MLP([cfg.EDGE_IN] + sizes + [cfg.message_dim], rng)
        self.node_mlp = MLP([cfg.message_dim + cfg.NODE_IN] + sizes + [2], rng)
        self.config = cfg

    # ------------------------------------------------------------------
    @staticmethod
    def build_inputs(sample: SpringSample) -> tuple[Tensor, Tensor, np.ndarray, np.ndarray]:
        """Fully-connected graph tensors from a spring snapshot."""
        n = sample.positions.shape[0]
        senders, receivers = np.nonzero(~np.eye(n, dtype=bool))
        x = Tensor(sample.positions)
        xs = gather(x, senders)
        xr = gather(x, receivers)
        rel = xs - xr
        dist = norm(rel, axis=1, keepdims=True)
        attrs = np.stack([sample.radii[senders], sample.radii[receivers],
                          sample.masses[senders], sample.masses[receivers]], axis=1)
        edge_feats = concatenate([rel, dist, Tensor(attrs)], axis=1)
        node_feats = Tensor(np.stack([sample.masses, sample.radii], axis=1))
        return node_feats, edge_feats, senders, receivers

    def forward(self, node_feats: Tensor, edge_feats: Tensor,
                senders: np.ndarray, receivers: np.ndarray
                ) -> tuple[Tensor, Tensor]:
        """Returns (per-node acceleration, per-edge messages)."""
        messages = self.edge_mlp(edge_feats)
        agg = scatter_add(messages, receivers, node_feats.shape[0])
        acc = self.node_mlp(concatenate([agg, node_feats], axis=1))
        return acc, messages

    def predict(self, sample: SpringSample) -> np.ndarray:
        """Inference: predicted accelerations for one snapshot."""
        with no_grad():
            acc, _ = self.forward(*self.build_inputs(sample))
        return acc.data


class SpringSampleTask(TrainTask):
    """Epoch-shuffled per-snapshot adapter for the shared Trainer.

    One optimizer step per spring snapshot; the sample ordering is
    reshuffled (through the trainer's RNG) each time the pool is
    exhausted, reproducing classic epoch-based training, and the
    ordering round-trips through checkpoints via ``state_dict``.
    """

    def __init__(self, model: InterpretableGNS, samples: list[SpringSample],
                 l1_weight: float, acc_scale: float):
        self.model = model
        self.samples = samples
        self.l1_weight = float(l1_weight)
        self.acc_scale = float(acc_scale)
        self._order = np.arange(len(samples))
        self._pos = len(samples)        # force a shuffle on the first draw

    def sample(self, rng: np.random.Generator) -> SpringSample:
        if self._pos >= len(self.samples):
            rng.shuffle(self._order)
            self._pos = 0
        sample = self.samples[int(self._order[self._pos])]
        self._pos += 1
        return sample

    def loss(self, sample: SpringSample, rng: np.random.Generator) -> Tensor:
        acc, messages = self.model.forward(*self.model.build_inputs(sample))
        target = sample.accelerations / self.acc_scale
        return mse_loss(acc, target) + self.l1_weight * l1_penalty(messages)

    def config_dict(self) -> dict:
        return {"l1_weight": self.l1_weight, "acc_scale": self.acc_scale,
                "num_samples": len(self.samples)}

    def state_dict(self) -> dict:
        return {"order": self._order.tolist(), "pos": self._pos}

    def load_state_dict(self, state: dict) -> None:
        self._order = np.asarray(state["order"], dtype=np.intp)
        self._pos = int(state["pos"])


def train_interpretable_gns(samples: list[SpringSample],
                            config: InterpretableConfig | None = None,
                            epochs: int = 30,
                            verbose: bool = False) -> tuple[InterpretableGNS, list[float]]:
    """Train on exact accelerations with the L1 message bottleneck,
    through the shared :class:`repro.train.Trainer`.

    Returns the model and per-epoch mean losses.
    """
    cfg = config or InterpretableConfig()
    model = InterpretableGNS(cfg)
    # normalize targets to unit scale for stable training
    acc_scale = float(np.abs(np.concatenate(
        [s.accelerations for s in samples])).std()) or 1.0
    task = SpringSampleTask(model, samples, cfg.l1_weight, acc_scale)
    trainer = Trainer(model, Adam(list(model.parameters()), lr=cfg.learning_rate),
                      task=task,
                      options=TrainerOptions(grad_clip=1.0, seed=cfg.seed,
                                             log_every=len(samples)))

    losses = []
    for epoch in range(epochs):
        trainer.fit(len(samples))
        epoch_losses = trainer.loss_history[-len(samples):]
        losses.append(float(np.mean(epoch_losses)))
        if verbose:
            print(f"epoch {epoch}: loss={losses[-1]:.5f}")
    model._acc_scale = acc_scale  # type: ignore[attr-defined]
    return model, losses


def edge_feature_dict(sample: SpringSample) -> dict[str, np.ndarray]:
    """Physical per-edge quantities aligned with the model's edge ordering
    (for symbolic regression): dx, r1 (sender), r2 (receiver), m1, m2."""
    n = sample.positions.shape[0]
    senders, receivers = np.nonzero(~np.eye(n, dtype=bool))
    diff = sample.positions[senders] - sample.positions[receivers]
    return {
        "dx": np.linalg.norm(diff, axis=1),
        "dx_x": diff[:, 0],
        "dx_y": diff[:, 1],
        "r1": sample.radii[senders],
        "r2": sample.radii[receivers],
        "m1": sample.masses[senders],
        "m2": sample.masses[receivers],
    }
