"""Edge-message extraction and sparsity analysis (Section 6).

The paper restricts the number of message components "by sorting them
based on the largest standard deviation" — with the L1 bottleneck, only a
few components carry signal; those are the ones symbolic regression
explains.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import no_grad
from ..nbody.dataset import SpringSample
from .model import InterpretableGNS, edge_feature_dict

__all__ = ["collect_messages", "top_components", "linear_fit_r2"]


def collect_messages(model: InterpretableGNS, samples: list[SpringSample],
                     max_edges: int | None = None,
                     rng: np.random.Generator | None = None
                     ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Run the model over snapshots and gather (messages, edge features).

    Returns
    -------
    messages: ``(E_total, message_dim)``
    features: dict of ``(E_total,)`` arrays (dx, r1, r2, m1, m2, force, …)
    """
    msg_parts = []
    feat_parts: dict[str, list[np.ndarray]] = {}
    with no_grad():
        for sample in samples:
            node_f, edge_f, senders, receivers = model.build_inputs(sample)
            _, messages = model.forward(node_f, edge_f, senders, receivers)
            msg_parts.append(messages.data.copy())
            feats = edge_feature_dict(sample)
            rest = sample.radii[senders] + sample.radii[receivers]
            diff_vec = sample.positions[senders] - sample.positions[receivers]
            diff = np.linalg.norm(diff_vec, axis=1)
            unit = diff_vec / np.maximum(diff, 1e-12)[:, None]
            # un-scaled spring law: extension magnitude and its vector
            # components (messages encode *vector* forces, so the linear
            # hypothesis of Section 6 is tested against the components)
            ext = diff - rest
            feats["force"] = ext
            feats["force_x"] = ext * unit[:, 0]
            feats["force_y"] = ext * unit[:, 1]
            for k, v in feats.items():
                feat_parts.setdefault(k, []).append(np.asarray(v))
    messages = np.concatenate(msg_parts, axis=0)
    features = {k: np.concatenate(v) for k, v in feat_parts.items()}

    if max_edges is not None and messages.shape[0] > max_edges:
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(messages.shape[0], size=max_edges, replace=False)
        messages = messages[idx]
        features = {k: v[idx] for k, v in features.items()}
    return messages, features


def top_components(messages: np.ndarray, k: int = 2) -> np.ndarray:
    """Indices of the k message components with the largest std."""
    stds = messages.std(axis=0)
    return np.argsort(stds)[::-1][:k]


def linear_fit_r2(component: np.ndarray, *references: np.ndarray) -> float:
    """R² of the best linear fit component ≈ Σ aᵢ·referenceᵢ + b.

    The Section 6 hypothesis: sparse GNS messages are a learned *linear
    combination of the true forces*. Pass the force **components**
    (e.g. ``linear_fit_r2(msg, f_x, f_y)``) — a single message channel
    encodes a fixed linear functional of the 2-D force vector, so fitting
    against the vector components is the correct test; the magnitude alone
    discards direction and under-reports the correlation.
    """
    cols = [np.asarray(r) for r in references]
    a = np.stack(cols + [np.ones_like(cols[0])], axis=1)
    coef, *_ = np.linalg.lstsq(a, component, rcond=None)
    pred = a @ coef
    ss_res = float(((component - pred) ** 2).sum())
    ss_tot = float(((component - component.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
