"""Interpretability: message extraction + symbolic regression (Section 6)."""

from .model import (
    InterpretableConfig, InterpretableGNS, SpringSampleTask,
    edge_feature_dict, train_interpretable_gns,
)
from .messages import collect_messages, linear_fit_r2, top_components
from .attention import attention_by_distance, attention_entropy, extract_attention
from .discover import DEFAULT_VAR_DIMS, DiscoveryResult, discover_law

__all__ = [
    "InterpretableConfig", "InterpretableGNS", "SpringSampleTask",
    "edge_feature_dict", "train_interpretable_gns",
    "collect_messages", "linear_fit_r2", "top_components",
    "attention_by_distance", "attention_entropy", "extract_attention",
    "DEFAULT_VAR_DIMS", "DiscoveryResult", "discover_law",
]
