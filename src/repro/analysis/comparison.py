"""Trajectory-comparison reports (learned rollout vs ground truth)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ComparisonReport", "compare_trajectories"]


@dataclass
class ComparisonReport:
    """Summary statistics of prediction error vs a reference trajectory."""

    frames_compared: int
    mean_error: float                 # time-mean of the per-frame mean error
    final_error: float
    max_error: float
    p95_final_error: float            # 95th-percentile per-particle error
    front_error: float                # flow-front position error (last frame)
    error_history: np.ndarray         # (T,)

    def as_text(self) -> str:
        return "\n".join([
            f"frames compared : {self.frames_compared}",
            f"mean error      : {self.mean_error:.5f}",
            f"final error     : {self.final_error:.5f}",
            f"max error       : {self.max_error:.5f}",
            f"p95 final error : {self.p95_final_error:.5f}",
            f"front error     : {self.front_error:+.5f}",
        ])


def compare_trajectories(predicted: np.ndarray, reference: np.ndarray,
                         front_quantile: float = 0.995) -> ComparisonReport:
    """Compare two ``(T, n, d)`` trajectories frame by frame.

    The trajectories are truncated to the common length; particle
    correspondence is assumed (same ordering).
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.ndim != 3 or reference.ndim != 3:
        raise ValueError("expected (T, n, d) trajectories")
    if predicted.shape[1:] != reference.shape[1:]:
        raise ValueError("particle count/dimension mismatch")
    t = min(predicted.shape[0], reference.shape[0])
    if t == 0:
        raise ValueError("no frames to compare")

    dists = np.linalg.norm(predicted[:t] - reference[:t], axis=-1)  # (T, n)
    per_frame = dists.mean(axis=1)
    front_pred = np.quantile(predicted[t - 1, :, 0], front_quantile)
    front_ref = np.quantile(reference[t - 1, :, 0], front_quantile)

    return ComparisonReport(
        frames_compared=t,
        mean_error=float(per_frame.mean()),
        final_error=float(per_frame[-1]),
        max_error=float(per_frame.max()),
        p95_final_error=float(np.quantile(dists[-1], 0.95)),
        front_error=float(front_pred - front_ref),
        error_history=per_frame,
    )
