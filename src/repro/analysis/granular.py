"""Granular-flow post-processing: runout, deposit geometry, and the
column-collapse scaling relations used throughout the landslide
literature the paper builds on."""

from __future__ import annotations

import numpy as np

__all__ = [
    "runout_history", "height_history", "center_of_mass_history",
    "deposit_profile", "deposit_angle", "normalized_runout",
]


def runout_history(frames: np.ndarray, toe_x: float,
                   quantile: float = 0.995) -> np.ndarray:
    """Per-frame runout L(t) = front(t) − toe; clipped at zero.

    ``frames`` is ``(T, n, d)``; the front is a high quantile of particle
    x so a single detached grain does not define it.
    """
    front = np.quantile(frames[..., 0], quantile, axis=1)
    return np.maximum(front - toe_x, 0.0)


def height_history(frames: np.ndarray, base_y: float = 0.0,
                   quantile: float = 0.995) -> np.ndarray:
    """Per-frame flow height H(t) above ``base_y``."""
    top = np.quantile(frames[..., 1], quantile, axis=1)
    return np.maximum(top - base_y, 0.0)


def center_of_mass_history(frames: np.ndarray,
                           masses: np.ndarray | None = None) -> np.ndarray:
    """Per-frame mass-weighted centroid → ``(T, d)``."""
    frames = np.asarray(frames)
    if masses is None:
        return frames.mean(axis=1)
    w = np.asarray(masses, dtype=np.float64)
    w = w / w.sum()
    return np.einsum("tnd,n->td", frames, w)


def deposit_profile(positions: np.ndarray, bins: int = 40,
                    x_range: tuple[float, float] | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Surface profile of a settled deposit.

    Bins particles by x and takes the highest particle per bin; empty
    bins report height 0. Returns (bin centers, surface heights).
    """
    pos = np.asarray(positions)
    x = pos[:, 0]
    lo, hi = x_range if x_range is not None else (float(x.min()), float(x.max()))
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    idx = np.clip(np.digitize(x, edges) - 1, 0, bins - 1)
    heights = np.zeros(bins)
    np.maximum.at(heights, idx, pos[:, 1])
    return centers, heights


def deposit_angle(positions: np.ndarray, bins: int = 40,
                  base_y: float = 0.0) -> float:
    """Mean slope angle (degrees) of the deposit's leading flank.

    Fits a line to the decreasing part of the surface profile between 10%
    and 90% of the peak height — a standard repose-angle estimate.
    """
    centers, heights = deposit_profile(positions, bins)
    h = heights - base_y
    peak = h.max()
    if peak <= 0:
        return 0.0
    peak_i = int(np.argmax(h))
    flank_x, flank_h = centers[peak_i:], h[peak_i:]
    keep = (flank_h > 0.1 * peak) & (flank_h < 0.9 * peak)
    if keep.sum() < 2:
        return 0.0
    slope = np.polyfit(flank_x[keep], flank_h[keep], 1)[0]
    return float(np.degrees(np.arctan(abs(slope))))


def normalized_runout(final_positions: np.ndarray, toe_x: float,
                      column_width: float,
                      quantile: float = 0.995) -> float:
    """The column-collapse similarity variable (L_f − L_0)/L_0.

    Experiments (Lube et al., Lajeunesse et al.) find this scales with
    the initial aspect ratio — the physics the GNS must capture for the
    paper's inverse problem to be well-posed.
    """
    front = float(np.quantile(final_positions[:, 0], quantile))
    return max(front - toe_x, 0.0) / column_width
