"""Post-processing: granular metrics, energy budgets, trajectory comparison."""

from .granular import (
    center_of_mass_history, deposit_angle, deposit_profile, height_history,
    normalized_runout, runout_history,
)
from .energy import (
    dissipated_energy, energy_gain_events, kinetic_energy_history,
    potential_energy_history, total_energy_history,
)
from .comparison import ComparisonReport, compare_trajectories

__all__ = [
    "center_of_mass_history", "deposit_angle", "deposit_profile",
    "height_history", "normalized_runout", "runout_history",
    "dissipated_energy", "energy_gain_events", "kinetic_energy_history",
    "potential_energy_history", "total_energy_history",
    "ComparisonReport", "compare_trajectories",
]
