"""Energy budgets from recorded trajectories.

For frames recorded at interval ``dt`` the kinetic energy uses central
finite-difference velocities; potential energy is gravitational. The
dissipation history (E0 − E(t)) quantifies how much the frictional
material has dissipated — a physical-plausibility check for learned
rollouts (an energy-*gaining* surrogate is violating thermodynamics).
"""

from __future__ import annotations

import numpy as np

__all__ = ["kinetic_energy_history", "potential_energy_history",
           "total_energy_history", "dissipated_energy", "energy_gain_events"]


def _velocities(frames: np.ndarray, dt: float) -> np.ndarray:
    """Central-difference velocities, one-sided at the ends → (T, n, d)."""
    v = np.gradient(frames, dt, axis=0)
    return v


def kinetic_energy_history(frames: np.ndarray, masses: np.ndarray,
                           dt: float) -> np.ndarray:
    v = _velocities(np.asarray(frames, dtype=np.float64), dt)
    return 0.5 * np.einsum("n,tnd,tnd->t", masses, v, v)


def potential_energy_history(frames: np.ndarray, masses: np.ndarray,
                             gravity: float = 9.81,
                             datum: float = 0.0) -> np.ndarray:
    y = np.asarray(frames)[..., 1] - datum
    return gravity * np.einsum("n,tn->t", masses, y)


def total_energy_history(frames: np.ndarray, masses: np.ndarray, dt: float,
                         gravity: float = 9.81,
                         datum: float = 0.0) -> np.ndarray:
    return (kinetic_energy_history(frames, masses, dt)
            + potential_energy_history(frames, masses, gravity, datum))


def dissipated_energy(frames: np.ndarray, masses: np.ndarray, dt: float,
                      gravity: float = 9.81) -> np.ndarray:
    """Cumulative dissipation E(0) − E(t); ≥ 0 for a passive system."""
    e = total_energy_history(frames, masses, dt, gravity)
    return e[0] - e


def energy_gain_events(frames: np.ndarray, masses: np.ndarray, dt: float,
                       gravity: float = 9.81,
                       tolerance: float = 0.02) -> np.ndarray:
    """Frame indices where total energy *increased* by more than
    ``tolerance`` × E(0) — physically impossible events that flag a
    misbehaving learned rollout (useful as a hybrid hand-back trigger)."""
    e = total_energy_history(frames, masses, dt, gravity)
    scale = max(abs(e[0]), 1e-12)
    jumps = np.diff(e)
    return np.nonzero(jumps > tolerance * scale)[0] + 1
