"""Hybrid GNS/MPM forward simulation (Section 4 of the paper).

The MPM solver advances ``substeps`` CFL steps per recorded *frame* (the
GNS learned timestep); the GNS advances one frame per prediction. State
hand-off:

* MPM → GNS: the last ``C+1`` recorded frames seed the GNS rollout.
* GNS → MPM: particle positions are taken from the last GNS frame and
  velocities from the last frame difference; stresses retain their last
  MPM values and re-equilibrate during the K refinement frames — this is
  what restores conservation-law compliance after a surrogate excursion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..gns.simulator import LearnedSimulator
from ..mpm.solver import MPMSolver
from ..obs import RolloutDivergedError, get_registry, span
from ..resilience.guards import GuardedMPMStepper, RewindPolicy
from .schedule import AdaptiveSchedule, FixedSchedule, Phase

__all__ = ["HybridResult", "HybridSimulator"]


@dataclass
class HybridResult:
    """Frames plus per-engine bookkeeping."""

    frames: np.ndarray               # (T, n, d) including the initial frame
    engines: list[str]               # per produced frame: "mpm" | "gns"
    mpm_time: float
    gns_time: float
    mpm_frames: int
    gns_frames: int
    switches: int = 0
    #: GNS phases cut short by a divergence guard (NaN/exploding velocity)
    gns_aborts: int = 0
    #: aborted GNS phases recovered by rewinding to the last stable
    #: state and re-entering MPM refinement
    rewinds: int = 0
    #: True when the rewind budget ran out and the run circuit-broke to
    #: pure MPM for its remaining frames
    mpm_fallback: bool = False
    #: per-stage GNS wall-clock breakdown (graph/features/encode/…),
    #: scoped to THIS run (the engine persists across runs)
    gns_timings: dict = field(default_factory=dict)
    #: Verlet neighbor-cache statistics (builds, queries, hit_rate)
    gns_cache: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.mpm_time + self.gns_time


class HybridSimulator:
    """Interleaves a trained GNS with the MPM physics solver."""

    def __init__(self, gns: LearnedSimulator, mpm: MPMSolver,
                 schedule: FixedSchedule | None = None,
                 substeps: int = 4, material: float | None = None,
                 recovery: RewindPolicy | None = None,
                 guard_mpm: bool = False):
        self.gns = gns
        self.mpm = mpm
        self.schedule = schedule or FixedSchedule()
        self.substeps = substeps
        self.material = material
        self.recovery = recovery or RewindPolicy()
        #: CFL/velocity watchdog around MPM frames: adaptively sub-steps
        #: instead of trusting the fixed per-phase dt (slightly different
        #: numerics, so opt-in)
        self.mpm_guard = GuardedMPMStepper(mpm) if guard_mpm else None
        history = gns.feature_config.history
        if self.schedule.warmup_frames < history:
            raise ValueError(
                f"warm-up must cover the GNS history ({history} frames)")

    # ------------------------------------------------------------------
    def _run_mpm_frames(self, num_frames: int) -> list[np.ndarray]:
        frames = []
        dt = self.mpm.stable_dt()
        for _ in range(num_frames):
            if self.mpm_guard is not None:
                self.mpm_guard.advance(dt * self.substeps)
            else:
                for _ in range(self.substeps):
                    self.mpm.step(dt)
            frames.append(self.mpm.particles.positions.copy())
        return frames

    def _sync_mpm_from_frames(self, frames: list[np.ndarray]) -> None:
        """Impose GNS output on the MPM particle state."""
        dt_frame = self.mpm.stable_dt() * self.substeps
        p = self.mpm.particles
        p.positions = frames[-1].copy()
        p.velocities = (frames[-1] - frames[-2]) / dt_frame
        # clamp back into the admissible region in case the surrogate
        # stepped outside the walls
        margin = self.mpm.grid.interior_margin()
        np.clip(p.positions[:, 0], margin, self.mpm.grid.size[0] - margin,
                out=p.positions[:, 0])
        np.clip(p.positions[:, 1], margin, self.mpm.grid.size[1] - margin,
                out=p.positions[:, 1])

    def _gns_frame_to_displacement(self, frames: list[np.ndarray]) -> np.ndarray:
        """Stack the last C+1 frames as the GNS seed history."""
        c = self.gns.feature_config.history
        return np.stack(frames[-(c + 1):], axis=0)

    # ------------------------------------------------------------------
    def run(self, total_frames: int) -> HybridResult:
        """Produce exactly ``total_frames`` frames after the initial state.

        The schedule's phase lengths are upper bounds: an adaptive
        criterion may cut a GNS phase short, in which case the remaining
        frame budget rolls into the following phases (the run never comes
        up short).

        **Rewind-and-retry**: a GNS phase aborted by the divergence
        guard keeps only its pre-divergence frames; the MPM state is
        (re)synced from the last stable frame and at least one MPM
        refinement frame is forced before the GNS gets another attempt.
        After :attr:`recovery` ``.max_rewinds`` such rewinds the run
        circuit-breaks to pure MPM for its remaining budget — it always
        completes, it never raises out of a surrogate excursion.
        """
        all_frames: list[np.ndarray] = [self.mpm.particles.positions.copy()]
        engines: list[str] = []
        mpm_time = gns_time = 0.0
        mpm_count = gns_count = 0
        switches = 0
        rewinds = 0
        mpm_fallback = False
        adaptive = isinstance(self.schedule, AdaptiveSchedule)
        sched = self.schedule
        # engine timers persist across runs; snapshot now so gns_timings
        # covers exactly this run (the per-phase rollouts inside it)
        engine = self.gns.engine()
        run_mark = engine.tracer.snapshot()
        self._gns_aborts = 0

        def run_mpm(frames_budget: int) -> None:
            nonlocal mpm_time, mpm_count
            t0 = time.perf_counter()
            with span("hybrid/mpm"):
                frames = self._run_mpm_frames(frames_budget)
            mpm_time += time.perf_counter() - t0
            mpm_count += len(frames)
            all_frames.extend(frames)
            engines.extend(["mpm"] * len(frames))

        remaining = total_frames
        warmup = min(sched.warmup_frames, remaining)
        if warmup:
            run_mpm(warmup)
            remaining -= warmup

        while remaining > 0:
            if mpm_fallback:
                # rewind budget spent: physics carries the rest
                run_mpm(remaining)
                remaining = 0
                break
            budget = min(sched.gns_frames, remaining)
            aborts_before = self._gns_aborts
            t0 = time.perf_counter()
            with span("hybrid/gns"):
                produced = self._run_gns_phase(Phase("gns", budget),
                                               all_frames, adaptive)
            gns_time += time.perf_counter() - t0
            aborted = self._gns_aborts > aborts_before
            gns_count += len(produced)
            all_frames.extend(produced)
            engines.extend(["gns"] * len(produced))
            if produced:
                self._sync_mpm_from_frames(all_frames)
            # (no frames produced → the MPM still holds the last stable
            # state; nothing to sync, the rewind is implicit)
            switches += 1
            remaining -= len(produced)
            if remaining <= 0:
                break
            refine = min(sched.refine_frames, remaining)
            if aborted:
                rewinds += 1
                # re-enter MPM refinement from the last stable state:
                # force at least one re-equilibration frame even when
                # the schedule configures none
                refine = min(max(refine, self.recovery.refine_after_rewind,
                                 1), remaining)
                if rewinds >= self.recovery.max_rewinds:
                    mpm_fallback = True
            if refine:
                run_mpm(refine)
                remaining -= refine
            elif not produced:
                # degenerate guard: criterion fires instantly and no
                # refinement is configured — fall back to physics
                run_mpm(remaining)
                remaining = 0

        reg = get_registry()
        if reg.enabled:
            reg.counter("hybrid.frames", engine="mpm").inc(mpm_count)
            reg.counter("hybrid.frames", engine="gns").inc(gns_count)
            reg.counter("hybrid.switches").inc(switches)
            if self._gns_aborts:
                reg.counter("hybrid.gns_aborts").inc(self._gns_aborts)
            if rewinds:
                reg.counter("hybrid.rewinds").inc(rewinds)
            if mpm_fallback:
                reg.counter("hybrid.mpm_fallbacks").inc()

        # the GNS phases all ran through one shared inference engine; its
        # cache persists across phases (MPM motion triggers exact rebuilds)
        return HybridResult(
            frames=np.stack(all_frames, axis=0), engines=engines,
            mpm_time=mpm_time, gns_time=gns_time,
            mpm_frames=mpm_count, gns_frames=gns_count, switches=switches,
            gns_aborts=self._gns_aborts, rewinds=rewinds,
            mpm_fallback=mpm_fallback,
            gns_timings=engine.timings(scope=run_mark),
            gns_cache=engine.cache_stats())

    def _run_gns_phase(self, phase: Phase, all_frames: list[np.ndarray],
                       adaptive: bool) -> list[np.ndarray]:
        """One GNS phase; returns the produced frames.

        A :class:`~repro.obs.RolloutDivergedError` cuts the phase short:
        the good frames produced so far are kept and control hands back
        to the MPM (which re-equilibrates from the last good state),
        instead of propagating garbage frames into the trajectory.
        """
        seed = self._gns_frame_to_displacement(all_frames)
        if not adaptive:
            try:
                rolled = self.gns.rollout(seed, phase.frames,
                                          material=self.material)
            except RolloutDivergedError as err:
                self._gns_aborts = getattr(self, "_gns_aborts", 0) + 1
                if err.frames is None or err.frames.shape[0] <= seed.shape[0]:
                    return []
                rolled = err.frames
            return [rolled[i] for i in range(seed.shape[0], rolled.shape[0])]

        # adaptive: step one frame at a time, asking the criterion
        sched: AdaptiveSchedule = self.schedule  # type: ignore[assignment]
        produced: list[np.ndarray] = []
        window = [seed[i] for i in range(seed.shape[0])]
        for i in range(phase.frames):
            try:
                rolled = self.gns.rollout(np.stack(window, axis=0), 1,
                                          material=self.material)
            except RolloutDivergedError:
                self._gns_aborts = getattr(self, "_gns_aborts", 0) + 1
                break
            nxt = rolled[-1]
            produced.append(nxt)
            window = window[1:] + [nxt]
            if i + 1 >= sched.min_gns_frames and sched.criterion(window):
                break
        return produced

    # ------------------------------------------------------------------
    def run_pure_mpm(self, total_frames: int) -> tuple[np.ndarray, float]:
        """Reference: same frame budget, physics only. Returns (frames, secs)."""
        t0 = time.perf_counter()
        frames = [self.mpm.particles.positions.copy()]
        frames.extend(self._run_mpm_frames(total_frames))
        return np.stack(frames, axis=0), time.perf_counter() - t0
