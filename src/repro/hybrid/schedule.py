"""Scheduling for the hybrid GNS/MPM solver.

The paper's fixed schedule (Section 4): a *warm-up* of K physics frames
(GNS needs the previous five steps), an *M*-frame GNS rollout, then K MPM
*iterative-refinement* frames, repeating. The adaptive variant (the
paper's "further research" direction, E8) switches back to MPM early when
an error-proxy metric exceeds a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["Phase", "FixedSchedule", "AdaptiveSchedule"]


@dataclass(frozen=True)
class Phase:
    """One segment of the hybrid run."""

    engine: str     # "mpm" | "gns"
    frames: int


class FixedSchedule:
    """warm-up K → (GNS M → MPM K) repeated until the frame budget."""

    def __init__(self, warmup_frames: int = 5, gns_frames: int = 10,
                 refine_frames: int = 5):
        if warmup_frames < 1 or gns_frames < 1 or refine_frames < 0:
            raise ValueError("invalid schedule lengths")
        self.warmup_frames = warmup_frames
        self.gns_frames = gns_frames
        self.refine_frames = refine_frames

    def phases(self, total_frames: int) -> Iterator[Phase]:
        """Yield phases covering exactly ``total_frames`` frames."""
        remaining = total_frames
        warmup = min(self.warmup_frames, remaining)
        if warmup:
            yield Phase("mpm", warmup)
            remaining -= warmup
        while remaining > 0:
            m = min(self.gns_frames, remaining)
            yield Phase("gns", m)
            remaining -= m
            if remaining <= 0:
                break
            k = min(self.refine_frames, remaining)
            if k:
                yield Phase("mpm", k)
                remaining -= k


class AdaptiveSchedule(FixedSchedule):
    """Fixed schedule plus an early-exit criterion for GNS phases.

    ``criterion(frames)`` receives the GNS frames produced so far in the
    current phase (list of ``(n, d)`` arrays, including the seed frame)
    and returns True when the surrogate should hand control back to MPM.
    """

    def __init__(self, criterion: Callable[[list], bool],
                 warmup_frames: int = 5, gns_frames: int = 10,
                 refine_frames: int = 5, min_gns_frames: int = 2):
        super().__init__(warmup_frames, gns_frames, refine_frames)
        self.criterion = criterion
        self.min_gns_frames = min_gns_frames
