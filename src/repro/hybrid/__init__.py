"""Hybrid GNS/MPM forward solver (Section 4) with adaptive switching (E8)."""

from .schedule import AdaptiveSchedule, FixedSchedule, Phase
from .metrics import (
    EnergySpikeCriterion, PenetrationCriterion, boundary_penetration,
    displacement_error, final_displacement_error, momentum_drift,
)
from .hybrid_sim import HybridResult, HybridSimulator

__all__ = [
    "AdaptiveSchedule", "FixedSchedule", "Phase",
    "EnergySpikeCriterion", "PenetrationCriterion",
    "boundary_penetration", "displacement_error",
    "final_displacement_error", "momentum_drift",
    "HybridResult", "HybridSimulator",
]
