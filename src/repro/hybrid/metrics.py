"""Error metrics and switching criteria for the hybrid solver."""

from __future__ import annotations

import numpy as np

__all__ = [
    "displacement_error", "final_displacement_error", "momentum_drift",
    "boundary_penetration", "EnergySpikeCriterion", "PenetrationCriterion",
]


def displacement_error(predicted: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Per-frame mean particle displacement error ‖x̂_t − x_t‖ → ``(T,)``."""
    t = min(predicted.shape[0], reference.shape[0])
    return np.linalg.norm(predicted[:t] - reference[:t], axis=-1).mean(axis=-1)


def final_displacement_error(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Error of the last common frame (the paper's Fig 4 y-axis)."""
    return float(displacement_error(predicted, reference)[-1])


def momentum_drift(frames: np.ndarray) -> np.ndarray:
    """Norm of frame-to-frame change of total 'momentum' (equal-mass
    displacement velocity); a cheap conservation-violation proxy available
    without ground truth."""
    vel = np.diff(frames, axis=0)               # (T-1, n, d)
    total = vel.mean(axis=1)                    # (T-1, d)
    return np.linalg.norm(np.diff(total, axis=0), axis=-1)


def boundary_penetration(frames: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Mean distance particles violate the box bounds, per frame.

    A physically-impossible prediction signature the GNS can produce but
    MPM cannot — an effective hand-back trigger.
    """
    lower = bounds[:, 0]
    upper = bounds[:, 1]
    below = np.maximum(lower - frames, 0.0)
    above = np.maximum(frames - upper, 0.0)
    return (below + above).sum(axis=-1).mean(axis=-1)


class EnergySpikeCriterion:
    """Hand back to MPM when per-frame kinetic energy jumps by more than
    ``ratio`` between consecutive GNS frames (a blow-up detector).

    Callable on the list of frames of the current GNS phase.
    """

    def __init__(self, ratio: float = 2.0, floor: float = 1e-12):
        if ratio <= 1.0:
            raise ValueError("ratio must exceed 1")
        self.ratio = ratio
        self.floor = floor

    def __call__(self, frames: list[np.ndarray]) -> bool:
        if len(frames) < 3:
            return False
        v_prev = frames[-2] - frames[-3]
        v_cur = frames[-1] - frames[-2]
        e_prev = float((v_prev ** 2).sum()) + self.floor
        e_cur = float((v_cur ** 2).sum())
        return e_cur > self.ratio * e_prev


class PenetrationCriterion:
    """Hand back to MPM when the GNS pushes particles outside the walls.

    Wall penetration is the clearest physically-impossible signature a
    learned rollout produces — MPM boundary conditions make it impossible
    on the physics side.
    """

    def __init__(self, bounds: np.ndarray, threshold: float = 1e-4):
        self.bounds = np.asarray(bounds, dtype=np.float64)
        self.threshold = threshold

    def __call__(self, frames: list[np.ndarray]) -> bool:
        if not frames:
            return False
        latest = frames[-1][None]
        return float(boundary_penetration(latest, self.bounds)[0]) \
            > self.threshold
