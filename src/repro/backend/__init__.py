"""Pluggable array backends for the autodiff primitive layer.

See :mod:`repro.backend.registry` for the dispatch model,
``docs/architecture.md`` for the seam diagram, and
``tests/test_backend_conformance.py`` for the contract a new backend
must pass.
"""

from .accel_backend import AccelCpuBackend
from .numpy_backend import NumpyBackend
from .optional import make_cupy_backend, make_torch_backend
from .registry import (
    CAP_DEVICE, CAP_FLOAT32_KERNELS, CAP_REFERENCE, DEFAULT_BACKEND,
    ArrayBackend, BackendUnavailableError, UnknownBackendError, active,
    active_xp, default_backend_name, get_backend, loadable_backends,
    register_backend, registered_backends, reset_backends,
    set_active_backend, use_backend,
)

__all__ = [
    "ArrayBackend", "NumpyBackend", "AccelCpuBackend",
    "BackendUnavailableError", "UnknownBackendError",
    "CAP_REFERENCE", "CAP_FLOAT32_KERNELS", "CAP_DEVICE", "DEFAULT_BACKEND",
    "active", "active_xp", "default_backend_name", "get_backend",
    "loadable_backends", "register_backend", "registered_backends",
    "reset_backends", "set_active_backend", "use_backend",
]

register_backend("numpy", NumpyBackend)
register_backend("accel", AccelCpuBackend)
register_backend("cupy", make_cupy_backend)
register_backend("torch", make_torch_backend)
