"""Lazy factories for optional GPU/tensor-library backends.

``cupy`` and ``torch`` are *registered* unconditionally but *imported*
only when selected. On a machine without the library the factory raises
:class:`~repro.backend.registry.BackendUnavailableError`, which
:func:`~repro.backend.registry.get_backend` turns into a NumPy fallback
plus a telemetry warning event — the package must keep working with
both libraries absent (CI proves this with an import-smoke step).

These are deliberately thin: they reuse the :class:`ArrayBackend` base
primitives over the foreign array namespace and mark themselves as
device backends. Kernel-level tuning (device segment-sums, stream
management) lands behind the same seam later without touching core
modules.
"""
# repro-lint: fp32-ok — capability flags and dtype maps name fp32

from __future__ import annotations

import numpy as np

from .registry import (CAP_DEVICE, ArrayBackend, BackendUnavailableError)

__all__ = ["make_cupy_backend", "make_torch_backend"]


class CupyBackend(ArrayBackend):
    """CuPy device backend (requires a working ``cupy`` install)."""

    name = "cupy"
    capabilities = frozenset({CAP_DEVICE, "float64", "float32"})

    def __init__(self, cupy):
        self._cupy = cupy

    @property
    def xp(self):
        return self._cupy

    def to_host(self, a, dtype=None) -> np.ndarray:
        if isinstance(a, self._cupy.ndarray):
            a = self._cupy.asnumpy(a)
        out = np.asarray(a)
        if dtype is not None and out.dtype != np.dtype(dtype):
            out = out.astype(dtype)
        return out

    def index_add(self, target, index, values) -> None:
        # cupy has no ufunc .at; scatter_add is its documented equivalent
        self._cupy.scatter_add(target, index, values)

    def segment_sum(self, values, index, num_segments: int, plan=None):
        xp = self._cupy
        out = xp.zeros((num_segments,) + values.shape[1:],
                       dtype=values.dtype)
        xp.scatter_add(out, index, values)
        return out


def make_cupy_backend() -> ArrayBackend:
    try:
        import cupy
    except ImportError as err:
        raise BackendUnavailableError(
            f"cupy backend needs the 'cupy' package: {err}") from err
    return CupyBackend(cupy)


class TorchBackend(ArrayBackend):
    """Torch backend exposing torch's NumPy-compatible namespace.

    Uses ``torch`` purely as an array library (no torch autograd — the
    tape in :mod:`repro.autodiff` stays the single source of gradients).
    """

    name = "torch"
    capabilities = frozenset({CAP_DEVICE, "float64", "float32"})

    def __init__(self, torch):
        self._torch = torch

    @property
    def xp(self):
        # torch ≥ 2.0 ships a NumPy-compatible namespace layer
        return self._torch

    def asarray(self, data, dtype=None):
        t = self._torch.as_tensor(data)
        return t if dtype is None else t.to(self._np_to_torch(dtype))

    def to_host(self, a, dtype=None) -> np.ndarray:
        if isinstance(a, self._torch.Tensor):
            a = a.detach().cpu().numpy()
        out = np.asarray(a)
        if dtype is not None and out.dtype != np.dtype(dtype):
            out = out.astype(dtype)
        return out

    def _np_to_torch(self, dtype):
        return {np.dtype(np.float64): self._torch.float64,
                np.dtype(np.float32): self._torch.float32}[np.dtype(dtype)]

    def index_add(self, target, index, values) -> None:
        target.index_add_(0, self._torch.as_tensor(index), values)


def make_torch_backend() -> ArrayBackend:
    try:
        import torch
    except ImportError as err:
        raise BackendUnavailableError(
            f"torch backend needs the 'torch' package: {err}") from err
    return TorchBackend(torch)
