"""The NumPy backend: host arrays, reference semantics.

This is the determinism reference every other backend is tested
against — its primitives *are* the NumPy calls the rest of the codebase
used to make directly, so selecting it reproduces pre-registry numbers
bit for bit. It never dispatches to compiled float32 kernels
(:meth:`float32_kernels` is ``None``), which is what makes
``REPRO_BACKEND=numpy`` the single kill switch for all acceleration.
"""
# repro-lint: fp32-ok — capability flags name the fp32 inference mode

from __future__ import annotations

import numpy as np

from .registry import CAP_REFERENCE, ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Pure-NumPy reference backend (the default determinism anchor)."""

    name = "numpy"
    capabilities = frozenset({CAP_REFERENCE, "float64", "float32"})

    @property
    def xp(self):
        return np

    def to_host(self, a, dtype=None) -> np.ndarray:
        out = np.asarray(a)
        if dtype is not None and out.dtype != np.dtype(dtype):
            out = out.astype(dtype)
        return out
