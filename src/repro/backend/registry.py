"""Array-backend registry: one seam under the autodiff primitive layer.

Every hot path — tensor ops and their VJPs, the CSR segment plans, the
fused MLP kernels, the MPM transfer loops — dispatches through an
:class:`ArrayBackend` handle instead of calling ``np.*`` directly. A
backend bundles

* an array namespace (:attr:`ArrayBackend.xp` — NumPy for the CPU
  backends, ``cupy`` for a GPU backend),
* the scatter/segment primitives whose semantics the conformance suite
  pins (``index_add``, ``index_max``, ``segment_sum``),
* explicit host-boundary transfers (:meth:`ArrayBackend.to_host` /
  :meth:`ArrayBackend.from_host`) so device arrays cross into the
  float64 integration / IO world at named points only, and
* an optional handle to compiled float32 kernels
  (:meth:`ArrayBackend.float32_kernels`).

Selection
---------
``REPRO_BACKEND=<name>`` selects the process-wide default;
``backend=`` keyword arguments on :class:`~repro.gns.engine.InferenceEngine`,
:meth:`~repro.gns.simulator.LearnedSimulator.rollout` and
:class:`~repro.mpm.solver.MPMSolver` take precedence over the
environment. The default is ``"accel"`` — NumPy semantics plus the
compiled float32 CPU kernels when the toolchain allows. ``"numpy"`` is
the determinism reference: pure NumPy everywhere, and it also implies
``REPRO_NO_CKERNELS`` (one knob disables all acceleration).

Optional backends (``cupy``, ``torch``) are registered as lazy
factories; resolving one on a machine without the library falls back to
NumPy with a telemetry warning event instead of crashing.

Registering a new backend does not require touching core modules::

    class MyBackend(NumpyBackend):
        name = "mine"
    register_backend("mine", MyBackend)

and the conformance suite (``tests/test_backend_conformance.py``)
parametrizes over every backend that resolves, which is the contract a
new backend must pass.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable

import numpy as np

__all__ = [
    "ArrayBackend", "BackendUnavailableError", "UnknownBackendError",
    "CAP_REFERENCE", "CAP_FLOAT32_KERNELS", "CAP_DEVICE", "DEFAULT_BACKEND",
    "active", "active_xp", "default_backend_name", "get_backend",
    "loadable_backends", "register_backend", "registered_backends",
    "reset_backends", "set_active_backend", "use_backend",
]

#: capability flags a backend may advertise
CAP_REFERENCE = "reference"            # the bitwise-determinism reference
CAP_FLOAT32_KERNELS = "float32-kernels"  # compiled fp32 kernels attached
CAP_DEVICE = "device"                  # arrays live off-host (to_host copies)

#: backend used when ``REPRO_BACKEND`` is unset
DEFAULT_BACKEND = "accel"

#: environment variable holding the process-wide backend name
ENV_VAR = "REPRO_BACKEND"


class UnknownBackendError(ValueError):
    """Requested backend name was never registered."""


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot be constructed on this machine
    (typically: its optional dependency is not installed)."""


class ArrayBackend:
    """Base class: NumPy-semantics primitives over :attr:`xp`.

    Subclasses override :attr:`xp` (the array namespace) and any
    primitive whose device implementation differs; everything here is
    written against the NumPy API surface, so an API-compatible
    namespace (CuPy) inherits working — if unoptimized — behavior.
    """

    #: registry name; also what ``REPRO_BACKEND`` matches against
    name: str = "abstract"
    #: capability flags (see module constants)
    capabilities: frozenset = frozenset()

    @property
    def xp(self):
        """The array-API namespace (``numpy``, ``cupy``, ...)."""
        raise NotImplementedError

    # -- host boundary -------------------------------------------------
    def asarray(self, data, dtype=None):
        """Coerce ``data`` to this backend's array type."""
        return self.xp.asarray(data) if dtype is None \
            else self.xp.asarray(data, dtype=dtype)

    def to_host(self, a, dtype=None) -> np.ndarray:
        """Return ``a`` as a host ``np.ndarray`` (the explicit boundary
        crossing; engines call this exactly once per step)."""
        out = np.asarray(a)
        if dtype is not None and out.dtype != np.dtype(dtype):
            out = out.astype(dtype)
        return out

    def from_host(self, a: np.ndarray, dtype=None):
        """Move a host array onto this backend."""
        return self.asarray(a, dtype=dtype)

    # -- allocation ----------------------------------------------------
    def empty(self, shape, dtype):
        return self.xp.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=dtype)

    # -- scatter/segment primitives ------------------------------------
    def index_add(self, target, index, values) -> None:
        """``target[index[k]] += values[k]`` with duplicate indices
        accumulating (``np.add.at`` semantics)."""
        self.xp.add.at(target, index, values)

    def index_max(self, target, index, values) -> None:
        """``target[index[k]] = max(target[index[k]], values[k])``
        (``np.maximum.at`` semantics; NaNs propagate)."""
        self.xp.maximum.at(target, index, values)

    def segment_sum(self, values, index, num_segments: int, plan=None):
        """``out[i] = Σ_{k: index[k]==i} values[k]`` — the reference
        implementation is :func:`repro.autodiff.scatter.segment_sum`."""
        from ..autodiff.scatter import segment_sum as _ref
        return _ref(values, index, num_segments, plan=plan)

    # -- compiled kernels ----------------------------------------------
    def float32_kernels(self):
        """Handle to fused float32 kernels, or ``None``. The float64
        path never consults this (bitwise contract); tape mode never
        consults this (the VJPs need the NumPy intermediates)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


# ----------------------------------------------------------------------
# registry state
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}
_EXPLICIT: ArrayBackend | None = None
_ENV_CACHE: tuple[str, ArrayBackend] | None = None
_WARNED: set[str] = set()


def register_backend(name: str, factory: Callable[[], ArrayBackend],
                     replace: bool = False) -> None:
    """Register a backend factory (a zero-arg callable — typically the
    backend class itself). The factory runs lazily on first resolution,
    so optional-dependency backends cost nothing until selected."""
    if not replace and name in _FACTORIES:
        raise ValueError(f"backend {name!r} already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def loadable_backends() -> tuple[str, ...]:
    """Registered backends that resolve on this machine (no fallback) —
    what the conformance suite parametrizes over."""
    out = []
    for name in registered_backends():
        try:
            get_backend(name, fallback=False)
        except BackendUnavailableError:
            continue
        out.append(name)
    return tuple(out)


def _fallback_warning(name: str, err: Exception) -> None:
    """Emit the lazy-import-failure telemetry: a counter plus a session
    event (when a TelemetrySession is open), once per backend name."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    try:
        from ..obs import current_session, get_registry
        reg = get_registry()
        if reg.enabled:
            reg.counter("backend.fallbacks").inc()
        sess = current_session()
        if sess is not None:
            sess.event("backend.fallback", backend=name, error=str(err),
                       fallback="numpy")
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:  # telemetry must never break backend resolution
        pass
    import warnings
    warnings.warn(f"array backend {name!r} unavailable ({err}); "
                  f"falling back to numpy", RuntimeWarning, stacklevel=3)


def get_backend(name: str | ArrayBackend | None = None, *,
                fallback: bool = True) -> ArrayBackend:
    """Resolve a backend by name (or pass an instance through).

    ``None`` returns the active backend. Unknown names always raise
    :class:`UnknownBackendError`. A registered backend whose factory
    raises :class:`BackendUnavailableError` (missing optional
    dependency) falls back to ``numpy`` with a telemetry warning event
    when ``fallback`` is true, else re-raises.
    """
    if name is None:
        return active()
    if isinstance(name, ArrayBackend):
        return name
    key = str(name).strip().lower()
    inst = _INSTANCES.get(key)
    if inst is not None:
        return inst
    factory = _FACTORIES.get(key)
    if factory is None:
        raise UnknownBackendError(
            f"unknown array backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}")
    try:
        inst = factory()
    except BackendUnavailableError as err:
        if not fallback:
            raise
        _fallback_warning(key, err)
        return get_backend("numpy")
    _INSTANCES[key] = inst
    return inst


def default_backend_name() -> str:
    """Backend name the environment selects (``REPRO_BACKEND``, else
    :data:`DEFAULT_BACKEND`)."""
    return os.environ.get(ENV_VAR, "").strip().lower() or DEFAULT_BACKEND


def active() -> ArrayBackend:
    """The active backend: an explicit :func:`set_active_backend` /
    :func:`use_backend` override, else the environment selection (read
    live, so tests can monkeypatch ``REPRO_BACKEND``)."""
    if _EXPLICIT is not None:
        return _EXPLICIT
    global _ENV_CACHE
    envname = default_backend_name()
    if _ENV_CACHE is None or _ENV_CACHE[0] != envname:
        _ENV_CACHE = (envname, get_backend(envname))
    return _ENV_CACHE[1]


def active_xp():
    """Array namespace of the active backend (the per-op dispatch read
    in :mod:`repro.autodiff`)."""
    return active().xp


def set_active_backend(backend: str | ArrayBackend | None) -> None:
    """Pin the active backend explicitly; ``None`` reverts to the
    environment selection."""
    global _EXPLICIT
    _EXPLICIT = None if backend is None else get_backend(backend)


@contextlib.contextmanager
def use_backend(backend: str | ArrayBackend):
    """Scoped :func:`set_active_backend` (conformance suite / tests)."""
    global _EXPLICIT
    prev = _EXPLICIT
    _EXPLICIT = get_backend(backend)
    try:
        yield _EXPLICIT
    finally:
        _EXPLICIT = prev


def reset_backends() -> None:
    """Drop cached instances and the active selection (test isolation).
    Registered factories survive."""
    global _EXPLICIT, _ENV_CACHE
    _EXPLICIT = None
    _ENV_CACHE = None
    _INSTANCES.clear()
    _WARNED.clear()
