"""The ``accel`` backend: NumPy semantics + compiled float32 kernels.

:mod:`repro.accel.cpu` is registered here as just another backend — its
runtime-compiled C kernels attach through :meth:`float32_kernels`, and
every dispatch site (the segment plans, the fused MLP tails) asks the
backend handle instead of importing ``repro.accel`` directly.

Float64 work is byte-for-byte the NumPy backend (the kernels only ever
see no-grad float32 arrays), so this is the process default: it degrades
to pure NumPy wherever the toolchain, dtype, layout, or tape mode rules
the C kernels out.
"""

from __future__ import annotations

from .numpy_backend import NumpyBackend
from .registry import CAP_FLOAT32_KERNELS

__all__ = ["AccelCpuBackend"]


class AccelCpuBackend(NumpyBackend):
    """NumPy backend with the cffi-compiled float32 CPU kernels."""

    name = "accel"

    @property
    def capabilities(self) -> frozenset:
        caps = set(NumpyBackend.capabilities)
        if self.float32_kernels() is not None:
            caps.add(CAP_FLOAT32_KERNELS)
        return frozenset(caps)

    def float32_kernels(self):
        from ..accel import kernels
        return kernels()
