"""Legacy setup shim: the environment has no `wheel` package, so editable
installs must use the setuptools develop path instead of PEP 517."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Differentiable graph network simulators (GNS) for forward and "
        "inverse particle/fluid problems — reproduction of Kumar & Choi, SC23 AI4S"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={"console_scripts": ["repro=repro.cli.main:main"]},
)
